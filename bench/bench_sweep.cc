/**
 * @file
 * The parallel sweep engine bench: every (architecture x reference
 * stream x seed) cell of a design-space sweep run twice, serially and
 * across the work-stealing pool, verifying bit-identical simulated
 * results and reporting the wall-clock speedup and per-cell
 * throughput (refs/sec, simulated cycles/ref).
 *
 * Emits BENCH_sweep.json (schema in farm/campaign.hh) so the perf
 * trajectory of the driver layer is tracked across changes.
 *
 * With warm_refs=N each cell runs an N-reference warm-up prefix
 * before its measured references. The sweep then runs twice more:
 * cold (every cell replays the prefix) and warm (one prefix image per
 * model x stream family, restored by every seed), verifies the two
 * produce bit-identical simulated results, and reports the warm-start
 * speedup in the json's "warm" block.
 *
 * Keys: threads= (default: hardware concurrency), seeds=, refs=,
 * pages=, json=, compare= (0 skips the serial reference run),
 * warm_refs=, warm_seed=.
 */

#include "bench_common.hh"
#include "farm/campaign.hh"

#include <chrono>
#include <map>

using namespace sasos;

namespace
{

std::vector<farm::SweepCell>
buildCells(const Options &options)
{
    const u64 seeds = options.getU64("seeds", 4);
    const u64 refs = options.getU64("refs", 200'000);
    const u64 pages = options.getU64("pages", 256);
    const u64 warm_refs = options.getU64("warm_refs", 0);
    const u64 warm_seed = options.getU64("warm_seed", 12345);
    std::vector<farm::SweepCell> cells;
    for (const auto &model : bench::standardModels(options)) {
        for (const auto &[name, factory] : farm::standardStreams()) {
            for (u64 seed = 1; seed <= seeds; ++seed) {
                farm::SweepCell cell;
                cell.model = model.label;
                cell.workload = name;
                cell.seed = seed;
                cell.config = model.config;
                cell.pages = pages;
                cell.references = refs;
                cell.makeStream = factory;
                cell.warmRefs = warm_refs;
                cell.warmSeed = warm_seed;
                cells.push_back(std::move(cell));
            }
        }
    }
    return cells;
}

double
timedSweep(unsigned threads, const std::vector<farm::SweepCell> &cells,
           std::vector<farm::CellResult> &results)
{
    const auto start = std::chrono::steady_clock::now();
    farm::SweepRunner runner(threads);
    results = runner.run(cells);
    const auto stop = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(stop - start).count();
}

int
runSweep(const Options &options)
{
    const unsigned threads = options.threads();
    const bool compare = options.getBool("compare", true) && threads > 1;
    const std::string json_path =
        options.getString("json", "BENCH_sweep.json");
    const auto cells = buildCells(options);

    bench::printHeader(
        "Parallel sweep engine: models x streams x seeds",
        "Each cell is one self-contained System; the pool runs cells "
        "concurrently and the batched issue loop runs references "
        "within a cell. Simulated results are bit-identical to the "
        "serial run.");

    std::vector<farm::CellResult> serial;
    double serial_wall = 0.0;
    if (compare || threads <= 1)
        serial_wall = timedSweep(1, cells, serial);

    std::vector<farm::CellResult> parallel;
    double parallel_wall = 0.0;
    if (threads > 1) {
        parallel_wall = timedSweep(threads, cells, parallel);
    } else {
        parallel = serial;
        parallel_wall = serial_wall;
    }

    bool identical = true;
    if (compare) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            if (serial[i].statsDump != parallel[i].statsDump ||
                serial[i].simCycles != parallel[i].simCycles) {
                identical = false;
                std::cout << "MISMATCH: cell " << i << " ("
                          << cells[i].model << "/" << cells[i].workload
                          << "/seed=" << cells[i].seed
                          << ") differs between threads=1 and threads="
                          << threads << "\n";
            }
        }
    }

    // Warm-start mode: restore each family's shared prefix image
    // instead of replaying the prefix, and verify the shortcut is
    // invisible in the simulated results.
    const u64 warm_refs = options.getU64("warm_refs", 0);
    farm::WarmReport warm_report;
    if (warm_refs > 0) {
        warm_report.warmRefs = warm_refs;
        warm_report.coldWallSeconds = parallel_wall;

        std::vector<farm::SweepCell> warm_cells = cells;
        const auto build_start = std::chrono::steady_clock::now();
        std::map<std::pair<std::string, std::string>,
                 std::shared_ptr<const snap::Snapshot>>
            images;
        for (auto &cell : warm_cells) {
            auto &image = images[{cell.model, cell.workload}];
            if (!image)
                image = farm::SweepRunner::buildWarmImage(cell);
            cell.warmImage = image;
        }
        const auto build_stop = std::chrono::steady_clock::now();
        warm_report.images = images.size();
        warm_report.buildWallSeconds =
            std::chrono::duration<double>(build_stop - build_start)
                .count();

        std::vector<farm::CellResult> warm;
        warm_report.warmWallSeconds = timedSweep(threads, warm_cells, warm);
        for (std::size_t i = 0; i < cells.size(); ++i) {
            if (warm[i].statsDump != parallel[i].statsDump ||
                warm[i].simCycles != parallel[i].simCycles) {
                identical = false;
                std::cout << "MISMATCH: cell " << i << " ("
                          << cells[i].model << "/" << cells[i].workload
                          << "/seed=" << cells[i].seed
                          << ") differs between cold replay and warm "
                             "restore\n";
            }
        }
    }

    // Per (model, workload) aggregate over seeds.
    TextTable table({"model", "workload", "cells", "cycles/ref",
                     "Mrefs/s", "cell wall (ms)"});
    std::string last_model;
    for (const auto &model : bench::standardModels(options)) {
        for (const auto &[name, factory] : farm::standardStreams()) {
            u64 refs = 0, cycles = 0, count = 0;
            double wall = 0.0;
            for (const auto &cell : parallel) {
                if (cell.model != model.label || cell.workload != name)
                    continue;
                refs += cell.references;
                cycles += cell.simCycles;
                wall += cell.wallSeconds;
                ++count;
            }
            table.addRow({model.label == last_model ? "" : model.label,
                          name, TextTable::num(count),
                          TextTable::num(bench::cyclesPerRef(cycles, refs),
                                         2),
                          TextTable::num(
                              bench::refsPerSecond(refs, wall) / 1e6, 2),
                          TextTable::num(wall * 1e3 /
                                             static_cast<double>(count),
                                         1)});
            last_model = model.label;
        }
    }
    table.print(std::cout);

    u64 total_refs = 0;
    for (const auto &cell : parallel)
        total_refs += cell.references;
    std::cout << "\ncells=" << cells.size() << " threads=" << threads
              << " wall=" << TextTable::num(parallel_wall, 2) << "s"
              << " throughput="
              << TextTable::num(
                     bench::refsPerSecond(total_refs, parallel_wall) / 1e6,
                     2)
              << " Mrefs/s\n";
    if (compare) {
        std::cout << "serial wall=" << TextTable::num(serial_wall, 2)
                  << "s speedup="
                  << TextTable::ratio(serial_wall / parallel_wall, 2)
                  << " results "
                  << (identical ? "bit-identical" : "MISMATCH") << "\n";
    }
    if (warm_refs > 0) {
        std::cout << "warm-start: prefix=" << warm_refs << " refs, "
                  << warm_report.images << " images, cold="
                  << TextTable::num(warm_report.coldWallSeconds, 2)
                  << "s warm="
                  << TextTable::num(warm_report.buildWallSeconds +
                                        warm_report.warmWallSeconds,
                                    2)
                  << "s (build "
                  << TextTable::num(warm_report.buildWallSeconds, 2)
                  << "s) speedup="
                  << TextTable::ratio(warm_report.speedup(), 2) << "\n";
    }

    writeSweepJson(json_path, parallel, threads, parallel_wall,
                   serial_wall,
                   warm_refs > 0 ? &warm_report : nullptr);
    std::cout << "wrote " << json_path << "\n";
    return identical ? 0 : 1;
}

/** Host time of the batched fast path vs per-call access(): the same
 * references through System::run and through a access() loop. */
void
BM_BatchedRun(benchmark::State &state, core::ModelKind kind)
{
    core::System sys(core::SystemConfig::forModel(kind));
    const os::DomainId app = sys.kernel().createDomain("app");
    const vm::SegmentId seg = sys.kernel().createSegment("heap", 256);
    sys.kernel().attach(app, seg, vm::Access::ReadWrite);
    sys.kernel().switchTo(app);
    const vm::VAddr base = sys.state().segments.find(seg)->base();
    wl::ZipfPageStream stream(base, 256, 0.8, 7);
    Rng rng(7);
    u64 refs = 0;
    for (auto _ : state) {
        sys.run(stream, 10'000, rng);
        refs += 10'000;
    }
    state.counters["refsPerSec"] = benchmark::Counter(
        static_cast<double>(refs), benchmark::Counter::kIsRate);
}

void
BM_PerCallAccess(benchmark::State &state, core::ModelKind kind)
{
    core::System sys(core::SystemConfig::forModel(kind));
    const os::DomainId app = sys.kernel().createDomain("app");
    const vm::SegmentId seg = sys.kernel().createSegment("heap", 256);
    sys.kernel().attach(app, seg, vm::Access::ReadWrite);
    sys.kernel().switchTo(app);
    const vm::VAddr base = sys.state().segments.find(seg)->base();
    wl::ZipfPageStream stream(base, 256, 0.8, 7);
    Rng rng(7);
    u64 refs = 0;
    for (auto _ : state) {
        for (u64 i = 0; i < 10'000; ++i)
            sys.load(stream.next(rng));
        refs += 10'000;
    }
    state.counters["refsPerSec"] = benchmark::Counter(
        static_cast<double>(refs), benchmark::Counter::kIsRate);
}

} // namespace

BENCHMARK_CAPTURE(BM_BatchedRun, plb, core::ModelKind::Plb);
BENCHMARK_CAPTURE(BM_PerCallAccess, plb, core::ModelKind::Plb);
BENCHMARK_CAPTURE(BM_BatchedRun, pagegroup, core::ModelKind::PageGroup);
BENCHMARK_CAPTURE(BM_PerCallAccess, pagegroup, core::ModelKind::PageGroup);
BENCHMARK_CAPTURE(BM_BatchedRun, conventional, core::ModelKind::Conventional);
BENCHMARK_CAPTURE(BM_PerCallAccess, conventional,
                  core::ModelKind::Conventional);

int
main(int argc, char **argv)
{
    return bench::runMain(argc, argv, runSweep);
}
