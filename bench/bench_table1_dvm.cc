/**
 * @file
 * Experiment T1.c: Table 1 "Distributed VM" (after Li; Carter et
 * al.'s Munin).
 *
 * Rows reproduced: Get Readable, Get Writable, Invalidate -- each a
 * trap + server upcall + per-(domain,page) rights update, the same
 * logical operation on both models (a single PLB entry update vs a
 * page-group move/TLB update).
 */

#include "bench_common.hh"

#include "workload/dvm.hh"

using namespace sasos;

namespace
{

void
printDvmTable(const Options &options)
{
    bench::printHeader(
        "Table 1: Distributed VM",
        "Li-style ownership protocol; nodes are protection domains; "
        "remote transfers charged as network round trips (Io).");

    wl::DvmConfig dvm;
    dvm.nodes = options.getU64("nodes", 4);
    dvm.sharedPages = options.getU64("sharedPages", 32);
    dvm.quanta = options.getU64("quanta", 200);
    dvm.refsPerQuantum = options.getU64("refsPerQuantum", 100);
    dvm.storeFraction = options.getDouble("storeFraction", 0.2);
    dvm.theta = options.getDouble("theta", 0.6);

    TextTable table({"system", "get-readable", "get-writable",
                     "invalidate", "protocol cycles (excl network)",
                     "vs plb"});
    double plb_cycles = 0.0;
    for (const auto &model : bench::standardModels(options)) {
        core::System sys(model.config);
        const wl::DvmResult result = wl::DvmWorkload(dvm).run(sys);
        const double protocol = static_cast<double>(
            result.cycles.totalExcludingIo().count());
        if (plb_cycles == 0.0)
            plb_cycles = protocol;
        table.addRow({model.label, TextTable::num(result.readFaults),
                      TextTable::num(result.writeFaults),
                      TextTable::num(result.invalidations),
                      TextTable::num(static_cast<u64>(protocol)),
                      bench::normalized(protocol, plb_cycles)});
    }
    table.print(std::cout);
}

void
printContentionSweep(const Options &options)
{
    bench::printHeader(
        "DVM protocol cost vs write intensity",
        "More writes mean more get-writable + invalidation episodes; "
        "per-(domain,page) rights churn is where the models differ.");

    TextTable table({"store fraction", "plb cycles", "page-group cycles",
                     "page-group group-moves", "pg/plb"});
    for (double stores : {0.05, 0.2, 0.5}) {
        wl::DvmConfig dvm;
        dvm.quanta = 120;
        dvm.refsPerQuantum = 80;
        dvm.storeFraction = stores;
        double cycles[2] = {0, 0};
        u64 moves = 0;
        int index = 0;
        for (const auto &model : bench::standardModels(options)) {
            if (model.label == "conventional")
                continue;
            core::System sys(model.config);
            const wl::DvmResult result = wl::DvmWorkload(dvm).run(sys);
            cycles[index] = static_cast<double>(
                result.cycles.totalExcludingIo().count());
            if (auto *pg = sys.pageGroupSystem())
                moves = pg->manager().pageMoves.value();
            ++index;
        }
        table.addRow({TextTable::num(stores, 2),
                      TextTable::num(static_cast<u64>(cycles[0])),
                      TextTable::num(static_cast<u64>(cycles[1])),
                      TextTable::num(moves),
                      TextTable::ratio(cycles[0] > 0
                                           ? cycles[1] / cycles[0]
                                           : 0.0,
                                       2)});
    }
    table.print(std::cout);
}

void
BM_DvmRun(benchmark::State &state, core::ModelKind kind)
{
    wl::DvmConfig dvm;
    dvm.quanta = 60;
    dvm.refsPerQuantum = 50;
    u64 sim_cycles = 0;
    u64 episodes = 0;
    for (auto _ : state) {
        core::System sys(core::SystemConfig::forModel(kind));
        const wl::DvmResult result = wl::DvmWorkload(dvm).run(sys);
        sim_cycles += result.cycles.totalExcludingIo().count();
        episodes += result.readFaults + result.writeFaults;
    }
    state.counters["simCyclesPerEpisode"] =
        episodes ? static_cast<double>(sim_cycles) /
                       static_cast<double>(episodes)
                 : 0.0;
}

} // namespace

BENCHMARK_CAPTURE(BM_DvmRun, plb, core::ModelKind::Plb)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_DvmRun, pagegroup, core::ModelKind::PageGroup)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_DvmRun, conventional, core::ModelKind::Conventional)
    ->Unit(benchmark::kMillisecond);

int
main(int argc, char **argv)
{
    return bench::runMain(argc, argv, [](const Options &options) {
        printDvmTable(options);
        printContentionSweep(options);
        return 0;
    });
}
