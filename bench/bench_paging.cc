/**
 * @file
 * Experiment C6: paging operations and unmap (Section 4.1.3).
 *
 * Decomposes what moving a page out of memory costs on each model:
 *  - excluding applications (PLB scan-update vs page-group move vs
 *    TLB replica purge);
 *  - unmapping (TLB purge; one cache access per line in the page to
 *    flush it);
 *  - the stale-PLB-entry property: the PLB needs no maintenance on
 *    unmap because the missing translation faults the access.
 */

#include "bench_common.hh"

using namespace sasos;

namespace
{

void
printUnmapDecomposition(const Options &options)
{
    bench::printHeader(
        "C6a: unmap cost decomposition",
        "\"the page needs to be removed from the TLB ... one cache "
        "access is required for each cache line in the page.\" Dirty "
        "page, all lines cached.");

    TextTable table({"system", "flush line accesses", "flush cycles",
                     "tlb/kernel cycles", "plb touched?"});
    for (const auto &model : bench::standardModels(options)) {
        core::System sys(model.config);
        auto &kernel = sys.kernel();
        const os::DomainId d = kernel.createDomain("app");
        const vm::SegmentId seg = kernel.createSegment("s", 2);
        kernel.attach(d, seg, vm::Access::ReadWrite);
        kernel.switchTo(d);
        const vm::VAddr base = sys.state().segments.find(seg)->base();
        // Dirty every line of the page.
        const u32 line = model.config.cache.lineBytes;
        for (u64 off = 0; off < vm::kPageBytes; off += line)
            sys.store(base + off);

        u64 plb_purged_before = 0;
        if (auto *plb = sys.plbSystem())
            plb_purged_before = plb->plb().purgedEntries.value();
        const CycleAccount before = sys.account();
        kernel.unmapPage(vm::pageOf(base));
        const CycleAccount delta = sys.account().since(before);

        std::string plb_touched = "n/a";
        if (auto *plb = sys.plbSystem()) {
            plb_touched = plb->plb().purgedEntries.value() ==
                                  plb_purged_before
                              ? "no (stale entry is safe)"
                              : "yes";
        }
        table.addRow(
            {model.label, TextTable::num(vm::kPageBytes / line),
             TextTable::num(delta.byCategory(CostCategory::Flush).count()),
             TextTable::num(
                 delta.byCategory(CostCategory::KernelWork).count()),
             plb_touched});
    }
    table.print(std::cout);
}

void
printExclusionCost(const Options &options)
{
    bench::printHeader(
        "C6b: excluding applications for a paging operation",
        "\"In a PLB system access rights are simply updated in the "
        "PLB; the number of entries changed depends on the number of "
        "domains that have access ... In a page-group system ... "
        "pages are moved to the paging server's group.\"");

    TextTable table({"sharing domains", "system", "exclusion cycles",
                     "hardware ops"});
    for (u64 sharers : {1, 4, 8}) {
        for (const auto &model : bench::standardModels(options)) {
            core::System sys(model.config);
            auto &kernel = sys.kernel();
            const os::DomainId pager = kernel.createDomain("pager");
            const vm::SegmentId seg = kernel.createSegment("s", 4);
            kernel.attach(pager, seg, vm::Access::ReadWrite);
            std::vector<os::DomainId> apps;
            for (u64 a = 0; a < sharers; ++a) {
                apps.push_back(
                    kernel.createDomain("app" + std::to_string(a)));
                kernel.attach(apps.back(), seg, vm::Access::ReadWrite);
            }
            const vm::VAddr base = sys.state().segments.find(seg)->base();
            // Warm every sharer's protection state.
            for (os::DomainId app : apps) {
                kernel.switchTo(app);
                sys.load(base);
            }
            const CycleAccount before = sys.account();
            kernel.restrictPage(vm::pageOf(base), vm::Access::None,
                                pager);
            const CycleAccount delta = sys.account().since(before);
            std::string ops = "-";
            if (auto *pg = sys.pageGroupSystem()) {
                ops = "page moved to pager group";
                (void)pg;
            } else if (sys.plbSystem()) {
                ops = "plb scan-update";
            } else {
                ops = "purge replicas";
            }
            table.addRow({TextTable::num(sharers), model.label,
                          TextTable::num(
                              delta.totalExcludingIo().count()),
                          ops});
        }
    }
    table.print(std::cout);
}

void
BM_PageOutIn(benchmark::State &state, core::ModelKind kind)
{
    core::System sys(core::SystemConfig::forModel(kind));
    auto &kernel = sys.kernel();
    os::Pager &pager = sys.makePager(os::PagerConfig{true});
    const os::DomainId d = kernel.createDomain("app");
    const vm::SegmentId seg = kernel.createSegment("s", 4);
    kernel.attach(d, seg, vm::Access::ReadWrite);
    kernel.attach(pager.domainId(), seg, vm::Access::ReadWrite);
    kernel.switchTo(d);
    const vm::VAddr base = sys.state().segments.find(seg)->base();
    sys.store(base);

    const u64 before = sys.cycles().count();
    u64 ops = 0;
    for (auto _ : state) {
        pager.pageOut(vm::pageOf(base));
        pager.pageIn(vm::pageOf(base));
        ops += 2;
    }
    state.counters["simCyclesPerOpExclIo"] =
        ops ? static_cast<double>(
                  sys.account().totalExcludingIo().count()) /
                  static_cast<double>(ops)
            : 0.0;
    (void)before;
}

} // namespace

BENCHMARK_CAPTURE(BM_PageOutIn, plb, core::ModelKind::Plb);
BENCHMARK_CAPTURE(BM_PageOutIn, pagegroup, core::ModelKind::PageGroup);
BENCHMARK_CAPTURE(BM_PageOutIn, conventional,
                  core::ModelKind::Conventional);

int
main(int argc, char **argv)
{
    return bench::runMain(argc, argv, [](const Options &options) {
        printUnmapDecomposition(options);
        printExclusionCost(options);
        return 0;
    });
}
