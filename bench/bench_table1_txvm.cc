/**
 * @file
 * Experiments T1.d and C8: Table 1 "Transactional VM" (after the IBM
 * 801 / Camelot) and the group-splitting pressure of Section 4.1.2.
 *
 * Rows reproduced: Lock(read), Lock(write), Commit. Per-transaction
 * page locks are per-(domain, page) rights -- natural for the PLB,
 * but on the page-group model they force pages into per-vector lock
 * groups, creating and destroying groups as transactions come and go
 * and filling the cache of active page-groups when a domain holds
 * many locks.
 */

#include "bench_common.hh"

#include "workload/txvm.hh"

using namespace sasos;

namespace
{

void
printTxTable(const Options &options)
{
    bench::printHeader(
        "Table 1: Transactional VM",
        "Transactions in private domains lock database pages on touch "
        "(fault -> lock grant -> rights update); commit returns pages "
        "to the inaccessible state.");

    wl::TxvmConfig tx;
    tx.commits = options.getU64("commits", 100);
    tx.transactions = options.getU64("transactions", 4);
    tx.dbPages = options.getU64("dbPages", 64);
    tx.pagesPerTx = options.getU64("pagesPerTx", 8);
    tx.writeFraction = options.getDouble("writeFraction", 0.3);

    TextTable table({"system", "commits", "aborts", "read locks",
                     "write locks", "cycles/commit", "vs plb"});
    double plb_per_commit = 0.0;
    for (const auto &model : bench::standardModels(options)) {
        core::System sys(model.config);
        const wl::TxvmResult result = wl::TxvmWorkload(tx).run(sys);
        const double per_commit =
            result.commits
                ? static_cast<double>(result.cycles.total().count()) /
                      result.commits
                : 0.0;
        if (plb_per_commit == 0.0)
            plb_per_commit = per_commit;
        table.addRow({model.label, TextTable::num(result.commits),
                      TextTable::num(result.aborts),
                      TextTable::num(result.lockReadGrants),
                      TextTable::num(result.lockWriteGrants),
                      TextTable::num(per_commit, 0),
                      bench::normalized(per_commit, plb_per_commit)});
    }
    table.print(std::cout);
}

void
printGroupPressureSweep(const Options &options)
{
    bench::printHeader(
        "C8: page-group churn under transactional locking "
        "(Section 4.1.2)",
        "\"This can cause a page to alternate between page-groups on "
        "each context switch\" / \"can fill the cache of active "
        "page-groups if a domain holds many locks.\"");

    TextTable table({"locks/tx", "groups created", "page moves",
                     "pg-cache misses", "pg-cache misses/commit",
                     "plb updates (same run on plb)"});
    for (u64 locks : {4, 16, 32}) {
        wl::TxvmConfig tx;
        tx.commits = 60;
        tx.transactions = 4;
        tx.dbPages = 128;
        tx.pagesPerTx = locks;
        tx.theta = 0.2; // spread locks across many pages

        core::System pg_sys(core::SystemConfig::fromOptions(
            options, core::SystemConfig::pageGroupSystem()));
        wl::TxvmWorkload(tx).run(pg_sys);
        auto &manager = pg_sys.pageGroupSystem()->manager();
        const u64 pg_misses =
            pg_sys.pageGroupSystem()->pageGroupCache().misses.value();

        core::System plb_sys(core::SystemConfig::fromOptions(
            options, core::SystemConfig::plbSystem()));
        wl::TxvmWorkload(tx).run(plb_sys);
        const u64 plb_updates =
            plb_sys.plbSystem()->plb().updates.value();

        table.addRow(
            {TextTable::num(locks),
             TextTable::num(manager.groupsCreated.value()),
             TextTable::num(manager.pageMoves.value()),
             TextTable::num(pg_misses),
             TextTable::num(static_cast<double>(pg_misses) / 60.0, 1),
             TextTable::num(plb_updates)});
    }
    table.print(std::cout);
    std::cout << "shape check: group churn and page-group cache "
                 "pressure grow with locks held; the PLB expresses the "
                 "same locks as in-place entry updates.\n";
}

void
BM_TxvmRun(benchmark::State &state, core::ModelKind kind)
{
    wl::TxvmConfig tx;
    tx.commits = 30;
    u64 sim_cycles = 0;
    u64 commits = 0;
    for (auto _ : state) {
        core::System sys(core::SystemConfig::forModel(kind));
        const wl::TxvmResult result = wl::TxvmWorkload(tx).run(sys);
        sim_cycles += result.cycles.total().count();
        commits += result.commits;
    }
    state.counters["simCyclesPerCommit"] =
        commits ? static_cast<double>(sim_cycles) /
                      static_cast<double>(commits)
                : 0.0;
}

} // namespace

BENCHMARK_CAPTURE(BM_TxvmRun, plb, core::ModelKind::Plb)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_TxvmRun, pagegroup, core::ModelKind::PageGroup)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_TxvmRun, conventional, core::ModelKind::Conventional)
    ->Unit(benchmark::kMillisecond);

int
main(int argc, char **argv)
{
    return bench::runMain(argc, argv, [](const Options &options) {
        printTxTable(options);
        printGroupPressureSweep(options);
        return 0;
    });
}
