/**
 * @file
 * The fault-injection differential oracle bench.
 *
 * Runs seeded fault campaigns (src/fault/oracle.hh) at several
 * injection rates. Each campaign replays one synthesized reference
 * trace against all four architectures, clean and under injection,
 * and checks that allow/deny decisions and final canonical rights are
 * bit-identical everywhere -- faults may only cost cycles, never
 * change an outcome. The bench refuses to write BENCH_faults.json
 * unless every campaign passes, so the JSON doubles as a proof
 * artifact.
 *
 * The table and JSON report what injection *is* allowed to change:
 * per-model recovery cost (extra cycles per injected event) and
 * total fault overhead.
 *
 * Keys: refs= (default 20000), seed=, rate= (run one rate instead of
 * the standard ladder), gap=, json=, oracle_trace= (the replayed
 * reference-trace file; trace= is the global event tracer).
 */

#include "bench_common.hh"

#include <fstream>

#include "fault/oracle.hh"
#include "obs/json.hh"
#include "workload/address_stream.hh"

using namespace sasos;

namespace
{

struct CampaignRow
{
    double rate = 0.0;
    fault::CampaignResult result;
};

fault::CampaignConfig
makeConfig(const Options &options, double rate)
{
    fault::CampaignConfig config;
    config.scenarioSeed = options.getU64("seed", 1);
    config.references = options.getU64("refs", 20'000);
    config.faults.seed = options.getU64("fault_seed", 7);
    config.faults.rate = rate;
    config.faults.transientGap = options.getU64("gap", 64);
    return config;
}

/** Extra cycles each injected event cost, on average. */
double
recoveryCost(const fault::RunOutcome &clean,
             const fault::RunOutcome &injected)
{
    if (injected.injectedEvents == 0)
        return 0.0;
    const double extra = static_cast<double>(injected.simCycles) -
                         static_cast<double>(clean.simCycles);
    return extra / static_cast<double>(injected.injectedEvents);
}

void
writeFaultsJson(const std::string &path,
                const std::vector<CampaignRow> &rows)
{
    std::ofstream os(path);
    obs::JsonWriter json(os);
    json.beginObject();
    json.member("bench", "faults");
    json.member("oraclePassed", true);
    json.key("campaigns");
    json.beginArray();
    for (const CampaignRow &row : rows) {
        json.beginObject();
        json.member("rate", row.rate);
        json.member("references", row.result.references);
        json.key("runs");
        json.beginArray();
        for (const fault::RunOutcome &run : row.result.runs) {
            const fault::RunOutcome *clean =
                row.result.find(run.model, false);
            json.beginObject();
            json.member("model", run.model);
            json.member("injected", run.injected);
            json.member("completed", run.completed);
            json.member("failed", run.failed);
            json.member("simCycles", run.simCycles);
            json.member("protectionFaults", run.protectionFaults);
            json.member("translationFaults", run.translationFaults);
            json.member("staleFaults", run.staleFaults);
            json.member("faultRetries", run.faultRetries);
            json.member("injectedEvents", run.injectedEvents);
            json.member("transients", run.transients);
            json.member("recoveryCyclesPerEvent",
                        run.injected && clean != nullptr
                            ? recoveryCost(*clean, run)
                            : 0.0);
            json.member(
                "overhead",
                run.injected && clean != nullptr && clean->simCycles > 0
                    ? static_cast<double>(run.simCycles) /
                              static_cast<double>(clean->simCycles) -
                          1.0
                    : 0.0);
            json.endObject();
        }
        json.endArray();
        json.endObject();
    }
    json.endArray();
    json.endObject();
    os << "\n";
}

int
runCampaigns(const Options &options)
{
    const std::string json_path =
        options.getString("json", "BENCH_faults.json");
    const std::string trace_path =
        options.getString("oracle_trace", "oracle_campaign.trace");

    std::vector<double> rates = {0.001, 0.01, 0.05, 0.2};
    if (options.has("rate"))
        rates = {options.getDouble("rate", 0.01)};

    bench::printHeader(
        "Fault-injection differential oracle",
        "Same trace, four architectures, clean vs injected. Faults "
        "(spurious evictions, flushes, delayed fills, transient "
        "protection faults) may change cycle costs only: every "
        "allow/deny decision and the final canonical rights must be "
        "bit-identical across all eight runs of a campaign.");

    std::vector<CampaignRow> rows;
    bool all_passed = true;
    TextTable table({"rate", "model", "events", "transients", "retries",
                     "clean cyc/ref", "faulty cyc/ref", "recovery cyc/evt",
                     "overhead", "oracle"});
    for (double rate : rates) {
        CampaignRow row;
        row.rate = rate;
        row.result = fault::runCampaign(makeConfig(options, rate),
                                        trace_path);
        all_passed = all_passed && row.result.passed;
        for (const fault::RunOutcome &run : row.result.runs) {
            if (!run.injected)
                continue;
            const fault::RunOutcome *clean =
                row.result.find(run.model, false);
            const double refs =
                static_cast<double>(row.result.references);
            table.addRow(
                {TextTable::num(rate, 3), run.model,
                 TextTable::num(run.injectedEvents),
                 TextTable::num(run.transients),
                 TextTable::num(run.faultRetries -
                                (clean != nullptr ? clean->faultRetries
                                                  : 0)),
                 TextTable::num(clean != nullptr
                                    ? static_cast<double>(
                                          clean->simCycles) /
                                          refs
                                    : 0.0,
                                2),
                 TextTable::num(
                     static_cast<double>(run.simCycles) / refs, 2),
                 TextTable::num(clean != nullptr
                                    ? recoveryCost(*clean, run)
                                    : 0.0,
                                1),
                 TextTable::ratio(
                     clean != nullptr && clean->simCycles > 0
                         ? static_cast<double>(run.simCycles) /
                               static_cast<double>(clean->simCycles)
                         : 1.0,
                     3),
                 row.result.passed ? "pass" : "FAIL"});
        }
        for (const std::string &violation : row.result.violations)
            std::cout << "ORACLE VIOLATION (rate=" << rate
                      << "): " << violation << "\n";
        rows.push_back(std::move(row));
    }
    table.print(std::cout);

    if (!all_passed) {
        std::cout << "\noracle FAILED; not writing " << json_path << "\n";
        return 1;
    }
    writeFaultsJson(json_path, rows);
    std::cout << "\noracle passed at every rate; wrote " << json_path
              << "\n";
    return 0;
}

/** Host cost of the injection hook itself: the same reference loop
 * with the injector disabled vs drawing at a real rate. */
void
BM_InjectionOverhead(benchmark::State &state, core::ModelKind kind,
                     bool faults)
{
    core::SystemConfig config = core::SystemConfig::forModel(kind);
    config.faults.enabled = faults;
    config.faults.rate = 0.01;
    core::System sys(config);
    const os::DomainId app = sys.kernel().createDomain("app");
    const vm::SegmentId seg = sys.kernel().createSegment("heap", 256);
    sys.kernel().attach(app, seg, vm::Access::ReadWrite);
    sys.kernel().switchTo(app);
    const vm::VAddr base = sys.state().segments.find(seg)->base();
    wl::ZipfPageStream stream(base, 256, 0.8, 7);
    Rng rng(7);
    u64 refs = 0;
    for (auto _ : state) {
        sys.run(stream, 10'000, rng);
        refs += 10'000;
    }
    state.counters["refsPerSec"] = benchmark::Counter(
        static_cast<double>(refs), benchmark::Counter::kIsRate);
}

} // namespace

BENCHMARK_CAPTURE(BM_InjectionOverhead, plb_clean, core::ModelKind::Plb,
                  false);
BENCHMARK_CAPTURE(BM_InjectionOverhead, plb_faults, core::ModelKind::Plb,
                  true);
BENCHMARK_CAPTURE(BM_InjectionOverhead, pagegroup_faults,
                  core::ModelKind::PageGroup, true);
BENCHMARK_CAPTURE(BM_InjectionOverhead, conventional_faults,
                  core::ModelKind::Conventional, true);
BENCHMARK_CAPTURE(BM_InjectionOverhead, pkey_faults,
                  core::ModelKind::Pkey, true);

int
main(int argc, char **argv)
{
    return bench::runMain(argc, argv, runCampaigns);
}
