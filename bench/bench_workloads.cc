/**
 * @file
 * Experiment E2E: every Table 1 application on every architecture --
 * the paper's overall comparison, as one summary table.
 *
 * The paper's conclusion to reproduce in shape: each model wins where
 * its structure matches the operation mix. Attach/detach-heavy and
 * static-sharing workloads favor the page-group model; per-(domain,
 * page) rights churn (DVM, transactions) favors the PLB; everything
 * beats purging conventional TLBs for switch-heavy work.
 */

#include "bench_common.hh"

#include "workload/attach_churn.hh"
#include "workload/checkpoint.hh"
#include "workload/comppage.hh"
#include "workload/dvm.hh"
#include "workload/gc.hh"
#include "workload/rpc.hh"
#include "workload/sharing.hh"
#include "workload/txvm.hh"

using namespace sasos;

namespace
{

/** Run one named workload on one system; return protection-relevant
 * cycles (excluding disk/network time, which is model-independent). */
using WorkloadRunner = std::function<u64(core::System &)>;

struct NamedWorkload
{
    std::string name;
    WorkloadRunner run;
};

std::vector<NamedWorkload>
buildWorkloads(const Options &options)
{
    (void)options;
    std::vector<NamedWorkload> workloads;

    workloads.push_back({"rpc", [](core::System &sys) {
        wl::RpcConfig config;
        config.calls = 400;
        return wl::RpcWorkload(config).run(sys).cycles
            .totalExcludingIo()
            .count();
    }});
    workloads.push_back({"attach-churn", [](core::System &sys) {
        wl::AttachChurnConfig config;
        config.episodes = 150;
        return wl::AttachChurnWorkload(config).run(sys).cycles
            .totalExcludingIo()
            .count();
    }});
    workloads.push_back({"sharing-static", [](core::System &sys) {
        wl::SharingConfig config;
        config.domains = 8;
        config.quanta = 120;
        return wl::SharingWorkload(config).run(sys).cycles
            .totalExcludingIo()
            .count();
    }});
    workloads.push_back({"sharing-dynamic", [](core::System &sys) {
        wl::SharingConfig config;
        config.domains = 8;
        config.quanta = 120;
        config.protChangePeriod = 2;
        return wl::SharingWorkload(config).run(sys).cycles
            .totalExcludingIo()
            .count();
    }});
    workloads.push_back({"concurrent-gc", [](core::System &sys) {
        wl::GcConfig config;
        config.collections = 6;
        config.spacePages = 48;
        return wl::GcWorkload(config).run(sys).cycles
            .totalExcludingIo()
            .count();
    }});
    workloads.push_back({"distributed-vm", [](core::System &sys) {
        wl::DvmConfig config;
        config.quanta = 150;
        return wl::DvmWorkload(config).run(sys).cycles
            .totalExcludingIo()
            .count();
    }});
    workloads.push_back({"transactional-vm", [](core::System &sys) {
        wl::TxvmConfig config;
        config.commits = 80;
        return wl::TxvmWorkload(config).run(sys).cycles
            .totalExcludingIo()
            .count();
    }});
    workloads.push_back({"checkpoint", [](core::System &sys) {
        wl::CheckpointConfig config;
        config.checkpoints = 3;
        config.refsBetween = 2500;
        return wl::CheckpointWorkload(config).run(sys).cycles
            .totalExcludingIo()
            .count();
    }});
    return workloads;
}

void
printGrandTable(const Options &options)
{
    bench::printHeader(
        "E2E: all Table 1 applications x all architectures",
        "Protection-relevant cycles (disk/network excluded), "
        "normalized to the PLB system per row. Lower is better.");

    const auto workloads = buildWorkloads(options);
    auto models = bench::extendedModels(options);

    std::vector<std::string> headers{"workload"};
    for (const auto &model : models)
        headers.push_back(model.label);
    headers.push_back("winner");
    TextTable table(headers);

    std::map<std::string, int> wins;
    for (const auto &workload : workloads) {
        std::vector<u64> cycles;
        for (const auto &model : models) {
            core::SystemConfig config = model.config;
            core::System sys(config);
            cycles.push_back(workload.run(sys));
        }
        const double baseline = static_cast<double>(cycles[0]);
        std::vector<std::string> row{workload.name};
        std::size_t best = 0;
        for (std::size_t i = 0; i < cycles.size(); ++i) {
            row.push_back(bench::normalized(
                static_cast<double>(cycles[i]), baseline));
            if (cycles[i] < cycles[best])
                best = i;
        }
        row.push_back(models[best].label);
        ++wins[models[best].label];
        table.addRow(row);
    }
    table.print(std::cout);

    std::cout << "\nwins by architecture:";
    for (const auto &[label, count] : wins)
        std::cout << " " << label << "=" << count;
    std::cout << "\npaper: \"Many of the answers will depend on how the "
                 "systems will be used, i.e., which operations are most "
                 "common.\" -- no model dominates every row.\n";
}

void
BM_FullSuite(benchmark::State &state, core::ModelKind kind)
{
    u64 sim_cycles = 0;
    for (auto _ : state) {
        core::System sys(core::SystemConfig::forModel(kind));
        wl::RpcConfig rpc;
        rpc.calls = 100;
        sim_cycles +=
            wl::RpcWorkload(rpc).run(sys).cycles.total().count();
    }
    state.counters["simCycles"] = static_cast<double>(sim_cycles);
}

} // namespace

BENCHMARK_CAPTURE(BM_FullSuite, plb, core::ModelKind::Plb)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_FullSuite, pagegroup, core::ModelKind::PageGroup)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_FullSuite, conventional,
                  core::ModelKind::Conventional)
    ->Unit(benchmark::kMillisecond);

int
main(int argc, char **argv)
{
    return bench::runMain(argc, argv, [](const Options &options) {
        printGrandTable(options);
        return 0;
    });
}
