/**
 * @file
 * The consolidated Table 1: every row of the paper's "Some Common
 * Functions that Manipulate Protection" measured as an isolated
 * operation on each architecture, in simulated cycles (I/O and
 * network time excluded -- those are model-independent).
 *
 * This is the direct artifact reproduction: the paper's table is
 * qualitative (which structures each model touches); this one prints
 * what those manipulations cost under the shared cost model, holding
 * the scenario fixed across models.
 */

#include "bench_common.hh"

#include <functional>

using namespace sasos;

namespace
{

/** A segment server that grants whatever right the fault needs. */
class GrantingServer : public os::SegmentServer
{
  public:
    bool
    onProtectionFault(os::Kernel &kernel, os::DomainId domain,
                      vm::VAddr va, vm::AccessType type) override
    {
        kernel.setPageRights(domain, vm::pageOf(va),
                             type == vm::AccessType::Store
                                 ? vm::Access::ReadWrite
                                 : vm::Access::Read);
        return true;
    }
};

/** Fixture shared by the rows: two apps + a server domain, a warm
 * shared segment, and a granting segment server. */
struct Scenario
{
    explicit Scenario(const core::SystemConfig &config) : sys(config)
    {
        app = sys.kernel().createDomain("app");
        peer = sys.kernel().createDomain("peer");
        server = sys.kernel().createDomain("server");
        seg = sys.kernel().createSegment("data", 16);
        sys.kernel().attach(app, seg, vm::Access::ReadWrite);
        sys.kernel().attach(peer, seg, vm::Access::ReadWrite);
        sys.kernel().attach(server, seg, vm::Access::ReadWrite);
        base = sys.state().segments.find(seg)->base();
        // Warm every domain's protection and translation state.
        for (os::DomainId d : {app, peer, server}) {
            sys.kernel().switchTo(d);
            sys.touchRange(base, 16 * vm::kPageBytes);
        }
        sys.kernel().switchTo(app);
    }

    u64
    measure(const std::function<void(Scenario &)> &op)
    {
        const CycleAccount before = sys.account();
        op(*this);
        return sys.account().since(before).totalExcludingIo().count();
    }

    core::System sys;
    os::DomainId app = 0, peer = 0, server = 0;
    vm::SegmentId seg = 0;
    /** Scratch segment created by a row's setup. */
    vm::SegmentId fresh = 0;
    vm::VAddr base;
    GrantingServer granting;
};

struct Row
{
    const char *application;
    const char *action;
    /** Unmeasured preparation (runs before the clock starts). */
    std::function<void(Scenario &)> setup;
    /** The measured operation. */
    std::function<void(Scenario &)> op;
};

std::vector<Row>
table1Rows()
{
    auto make_pager = [](Scenario &s) {
        os::Pager &pager = s.sys.makePager(os::PagerConfig{true});
        s.sys.kernel().attach(pager.domainId(), s.seg,
                              vm::Access::ReadWrite);
    };
    return {
        {"Any", "Attach Segment",
         [](Scenario &s) {
             s.fresh = s.sys.kernel().createSegment("fresh", 16);
         },
         [](Scenario &s) {
             s.sys.kernel().attach(s.app, s.fresh, vm::Access::ReadWrite);
         }},
        {"Any", "Detach Segment", nullptr,
         [](Scenario &s) { s.sys.kernel().detach(s.peer, s.seg); }},
        {"Concurrent GC", "Flip Spaces",
         [](Scenario &s) {
             s.fresh = s.sys.kernel().createSegment("to-space", 16);
         },
         [](Scenario &s) {
             // from-space revoked from the app; to-space appears for
             // collector (server) and app (no access until scanned).
             s.sys.kernel().detach(s.app, s.seg);
             s.sys.kernel().attach(s.server, s.fresh,
                                   vm::Access::ReadWrite);
             s.sys.kernel().attach(s.app, s.fresh, vm::Access::None);
         }},
        {"Concurrent GC", "Access unscanned to-space",
         [](Scenario &s) {
             s.sys.kernel().setPageRights(s.app, vm::pageOf(s.base),
                                          vm::Access::None);
             s.sys.kernel().setSegmentServer(s.seg, &s.granting);
         },
         [](Scenario &s) {
             s.sys.load(s.base); // trap -> upcall -> grant -> retry
         }},
        {"Distributed VM", "Get Readable",
         [](Scenario &s) {
             s.sys.kernel().setPageRights(s.app, vm::pageOf(s.base),
                                          vm::Access::None);
             s.sys.kernel().setSegmentServer(s.seg, &s.granting);
         },
         [](Scenario &s) { s.sys.load(s.base); }},
        {"Distributed VM", "Get Writable",
         [](Scenario &s) {
             s.sys.kernel().setPageRights(s.app, vm::pageOf(s.base),
                                          vm::Access::Read);
             s.sys.kernel().setSegmentServer(s.seg, &s.granting);
         },
         [](Scenario &s) {
             // Invalidate the remote replica, then grant exclusive.
             s.sys.kernel().setPageRights(s.peer, vm::pageOf(s.base),
                                          vm::Access::None);
             s.sys.store(s.base);
         }},
        {"Distributed VM", "Invalidate", nullptr,
         [](Scenario &s) {
             s.sys.kernel().setPageRights(s.peer, vm::pageOf(s.base),
                                          vm::Access::None);
         }},
        {"Transactional VM", "Lock (read)", nullptr,
         [](Scenario &s) {
             s.sys.kernel().setPageRights(s.app, vm::pageOf(s.base),
                                          vm::Access::Read);
         }},
        {"Transactional VM", "Lock (write)", nullptr,
         [](Scenario &s) {
             s.sys.kernel().setPageRights(s.app, vm::pageOf(s.base),
                                          vm::Access::ReadWrite);
         }},
        {"Transactional VM", "Commit (8 pages)",
         [](Scenario &s) {
             for (u64 p = 0; p < 8; ++p) {
                 s.sys.kernel().setPageRights(
                     s.app, vm::pageOf(s.base) + p, vm::Access::ReadWrite);
             }
         },
         [](Scenario &s) {
             for (u64 p = 0; p < 8; ++p) {
                 s.sys.kernel().setPageRights(
                     s.app, vm::pageOf(s.base) + p, vm::Access::None);
             }
         }},
        {"Concurrent Checkpoint", "Restrict Access", nullptr,
         [](Scenario &s) {
             s.sys.kernel().setSegmentRights(s.app, s.seg,
                                             vm::Access::Read);
         }},
        {"Concurrent Checkpoint", "Checkpoint Page", nullptr,
         [](Scenario &s) {
             // Disk write excluded from the reported cycles.
             s.sys.kernel().charge(CostCategory::Io,
                                   s.sys.costs().diskAccess);
             s.sys.kernel().setPageRights(s.app, vm::pageOf(s.base),
                                          vm::Access::ReadWrite);
         }},
        {"Compression Paging", "Page-out", make_pager,
         [](Scenario &s) {
             s.sys.kernel().pager()->pageOut(vm::pageOf(s.base));
         }},
        {"Compression Paging", "Page-in",
         [make_pager](Scenario &s) {
             make_pager(s);
             s.sys.kernel().pager()->pageOut(vm::pageOf(s.base));
         },
         [](Scenario &s) {
             s.sys.kernel().pager()->pageIn(vm::pageOf(s.base));
         }},
    };
}

void
printTable1(const Options &options)
{
    bench::printHeader(
        "Table 1, consolidated: cycles per operation (excl. I/O)",
        "Each row is the paper's operation run in isolation on a warm "
        "three-domain scenario; same kernel calls on every "
        "architecture, different hardware maintenance underneath.");

    const auto models = bench::standardModels(options);
    std::vector<std::string> headers{"application", "action"};
    for (const auto &model : models)
        headers.push_back(model.label);
    TextTable table(headers);

    const char *last_app = "";
    for (const Row &row : table1Rows()) {
        std::vector<std::string> cells;
        cells.push_back(std::string(row.application) == last_app
                            ? ""
                            : row.application);
        last_app = row.application;
        cells.push_back(row.action);
        for (const auto &model : models) {
            Scenario scenario(model.config);
            if (row.setup)
                row.setup(scenario);
            cells.push_back(TextTable::num(scenario.measure(row.op)));
        }
        table.addRow(cells);
    }
    table.print(std::cout);
    std::cout << "paper's qualitative table made quantitative; see the "
                 "per-application benches for the full workloads.\n";
}

void
BM_Table1Row(benchmark::State &state, core::ModelKind kind)
{
    u64 sim_cycles = 0;
    for (auto _ : state) {
        Scenario scenario(core::SystemConfig::forModel(kind));
        sim_cycles += scenario.measure([](Scenario &s) {
            s.sys.kernel().setPageRights(s.app, vm::pageOf(s.base),
                                         vm::Access::Read);
        });
    }
    state.counters["simCyclesLockRead"] = static_cast<double>(sim_cycles);
}

} // namespace

BENCHMARK_CAPTURE(BM_Table1Row, plb, core::ModelKind::Plb);
BENCHMARK_CAPTURE(BM_Table1Row, pagegroup, core::ModelKind::PageGroup);
BENCHMARK_CAPTURE(BM_Table1Row, conventional, core::ModelKind::Conventional);

int
main(int argc, char **argv)
{
    return bench::runMain(argc, argv, [](const Options &options) {
        printTable1(options);
        return 0;
    });
}
