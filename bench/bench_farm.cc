/**
 * @file
 * The sweep-farm equivalence oracle.
 *
 * Builds one campaign (the standard four protection models x stream
 * recipes x seeds, plus fault-injected cells), runs it twice -- once
 * serially through SweepRunner(1), once sharded across forked worker
 * processes by the farm coordinator with the chaos knobs engaged --
 * and demands the farmed results be bit-identical to the serial ones:
 * per-cell stats dump and cycle account compared in memory, and the
 * deterministic section of BENCH_farm.json compared byte for byte
 * after both result sets pass through the same JSON writer. The exit
 * code is the verdict, so CI and ctest gate on it directly.
 *
 * Knobs: farm_workers=, farm_checkpoint_every=, farm_kill_rate=,
 * farm_migrate_rate=, farm_kill_seed= (see help=1). With a nonzero
 * kill rate the oracle also proves crash recovery: killed workers'
 * cells are resumed from their last checkpoint image (or restarted)
 * and still land on the serial answer.
 */

#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "farm/campaign.hh"
#include "farm/coordinator.hh"
#include "farm/wire.hh"
#include "obs/json.hh"
#include "sim/table.hh"

using namespace sasos;

namespace
{

using Clock = std::chrono::steady_clock;

farm::Campaign
buildCampaign(const Options &options)
{
    const u64 refs = options.getU64("refs", 30'000);
    const u64 seeds = options.getU64("seeds", 2);
    const u64 pages = options.getU64("pages", 256);

    std::vector<farm::SweepCell> cells;
    for (const auto &model : bench::standardModels(options)) {
        for (const auto &[name, factory] : farm::standardStreams()) {
            for (u64 seed = 1; seed <= seeds; ++seed) {
                farm::SweepCell cell;
                cell.model = model.label;
                cell.workload = name;
                cell.seed = seed;
                cell.config = model.config;
                cell.pages = pages;
                cell.references = refs;
                cell.makeStream = factory;
                cells.push_back(std::move(cell));
            }
        }
    }
    // Fault-injected cells: recovery must reproduce injected
    // failures, not just clean runs.
    for (const auto &model : bench::standardModels(options)) {
        farm::SweepCell cell;
        cell.model = model.label + "+faults";
        cell.workload = "zipf";
        cell.seed = 7;
        cell.config = model.config;
        cell.config.faults.enabled = true;
        cell.config.faults.seed = 7;
        cell.config.faults.rate = 0.02;
        cell.pages = pages;
        cell.references = refs;
        cell.makeStream = farm::standardStreams()[2].second;
        cells.push_back(std::move(cell));
    }
    return farm::Campaign(std::move(cells));
}

/**
 * The deterministic per-cell section of BENCH_farm.json: everything a
 * cell's result contains except wall-clock. The farmed and the serial
 * results both render through this one writer, and the two strings
 * must match byte for byte -- the merged-artifact half of the oracle.
 */
void
writeDeterministicCells(obs::JsonWriter &json,
                        const std::vector<farm::CellResult> &results)
{
    json.beginArray();
    for (const farm::CellResult &cell : results) {
        json.beginObject();
        json.member("id", cell.id);
        json.member("model", cell.model);
        json.member("workload", cell.workload);
        json.member("seed", cell.seed);
        json.member("references", cell.references);
        json.member("completed", cell.completed);
        json.member("failed", cell.failed);
        json.member("simCycles", cell.simCycles);
        std::ostringstream fnv;
        fnv << std::hex
            << snap::fnv1a(
                   reinterpret_cast<const u8 *>(cell.statsDump.data()),
                   cell.statsDump.size());
        json.member("statsFnv", fnv.str());
        json.endObject();
    }
    json.endArray();
}

std::string
renderDeterministicCells(const std::vector<farm::CellResult> &results)
{
    std::ostringstream os;
    obs::JsonWriter json(os);
    writeDeterministicCells(json, results);
    return os.str();
}

void
writeFarmJson(const std::string &path, const farm::FarmOptions &fopts,
              const farm::FarmResult &farmed,
              const std::vector<farm::CellResult> &results, bool ok,
              bool stats_identical, bool json_identical,
              double serial_wall)
{
    std::ofstream os(path);
    obs::JsonWriter json(os);
    json.beginObject();
    json.member("bench", "farm");
    json.member("ok", ok);
    json.member("workers", fopts.workers);
    json.member("checkpointEvery", fopts.checkpointEvery);
    json.member("killRate", fopts.killRate);
    json.member("migrateRate", fopts.migrateRate);
    json.member("killSeed", fopts.killSeed);
    json.member("identicalStats", stats_identical);
    json.member("identicalJson", json_identical);
    json.member("serialWallSeconds", serial_wall);
    json.member("farmWallSeconds", farmed.wallSeconds);
    json.member("speedup", farmed.wallSeconds > 0.0
                               ? serial_wall / farmed.wallSeconds
                               : 0.0);
    json.key("farm");
    json.beginObject();
    json.member("forks", farmed.stats.forks);
    json.member("deaths", farmed.stats.deaths);
    json.member("chaosKills", farmed.stats.chaosKills);
    json.member("timeouts", farmed.stats.timeouts);
    json.member("retries", farmed.stats.retries);
    json.member("checkpointImages", farmed.stats.checkpointImages);
    json.member("preempts", farmed.stats.preempts);
    json.member("migrations", farmed.stats.migrations);
    json.member("resumes", farmed.stats.resumes);
    json.member("rejectedImages", farmed.stats.rejectedImages);
    json.member("poisonedFrames", farmed.stats.poisonedFrames);
    json.member("duplicateResults", farmed.stats.duplicateResults);
    json.endObject();
    json.key("cells");
    writeDeterministicCells(json, results);
    json.endObject();
    os << "\n";
}

int
runFarmBench(const Options &options)
{
    farm::FarmOptions fopts = farm::FarmOptions::fromOptions(options);
    const farm::Campaign campaign = buildCampaign(options);

    bench::printHeader(
        "Farm equivalence oracle",
        "Shard the campaign across " + std::to_string(fopts.workers) +
            " forked workers (chaos kill rate " +
            TextTable::num(fopts.killRate, 2) + ", migrate rate " +
            TextTable::num(fopts.migrateRate, 2) +
            "); the merged results must be bit-identical to a serial "
            "run of the same campaign.");

    const auto serial_mark = Clock::now();
    const std::vector<farm::CellResult> serial =
        farm::SweepRunner(1).run(campaign);
    const double serial_wall =
        std::chrono::duration<double>(Clock::now() - serial_mark).count();

    const farm::FarmResult farmed = farm::runFarm(campaign, fopts);
    if (!farmed.ok) {
        std::cout << "FARM FAILED: " << farmed.error << "\n";
        return 1;
    }

    bool stats_identical = true;
    for (std::size_t i = 0; i < serial.size(); ++i) {
        const farm::CellResult &want = serial[i];
        const farm::CellResult &got = farmed.results[i];
        if (got.id != want.id || got.statsDump != want.statsDump ||
            got.simCycles != want.simCycles ||
            got.completed != want.completed ||
            got.failed != want.failed) {
            stats_identical = false;
            std::cout << "MISMATCH: cell id " << want.id << " ("
                      << want.model << "/" << want.workload << "/seed="
                      << want.seed << ") diverged from the serial run\n";
        }
    }

    const std::string serial_json = renderDeterministicCells(serial);
    const std::string farmed_json =
        renderDeterministicCells(farmed.results);
    const bool json_identical = serial_json == farmed_json;
    if (!json_identical)
        std::cout << "MISMATCH: deterministic BENCH JSON section "
                     "differs between farmed and serial results\n";

    const bool ok = stats_identical && json_identical;

    TextTable table({"cells", "workers", "forks", "chaos kills",
                     "retries", "resumes", "migrations", "images",
                     "verdict"});
    table.addRow({TextTable::num(static_cast<u64>(campaign.size())),
                  TextTable::num(static_cast<u64>(fopts.workers)),
                  TextTable::num(farmed.stats.forks),
                  TextTable::num(farmed.stats.chaosKills),
                  TextTable::num(farmed.stats.retries),
                  TextTable::num(farmed.stats.resumes),
                  TextTable::num(farmed.stats.migrations),
                  TextTable::num(farmed.stats.checkpointImages),
                  ok ? "bit-identical" : "DIVERGED"});
    table.print(std::cout);
    std::cout << "serial=" << TextTable::num(serial_wall, 2)
              << "s farm=" << TextTable::num(farmed.wallSeconds, 2)
              << "s speedup="
              << TextTable::ratio(farmed.wallSeconds > 0.0
                                      ? serial_wall / farmed.wallSeconds
                                      : 0.0,
                                  2)
              << "\n";

    const std::string json_path =
        options.getString("json", "BENCH_farm.json");
    writeFarmJson(json_path, fopts, farmed, farmed.results, ok,
                  stats_identical, json_identical, serial_wall);
    std::cout << "wrote " << json_path << "\n";
    return ok ? 0 : 1;
}

/** Host cost of sealing + parsing one worker Done frame. */
void
BM_FrameEncodeDecode(benchmark::State &state)
{
    farm::Message done;
    done.kind = farm::MsgKind::Done;
    done.cell = 42;
    done.result.id = 42;
    done.result.model = "plb";
    done.result.workload = "zipf";
    done.result.seed = 3;
    done.result.references = 200'000;
    done.result.completed = 199'000;
    done.result.failed = 1'000;
    done.result.simCycles = 1'234'567;
    done.result.statsDump = std::string(4096, 's');
    for (auto _ : state) {
        const std::vector<u8> frame = farm::encodeMessage(done);
        const farm::Message back = farm::decodeMessage(frame);
        benchmark::DoNotOptimize(back.result.statsDump.data());
    }
}

/** Host cost of one mid-cell worker checkpoint image. */
void
BM_WorkerCheckpoint(benchmark::State &state)
{
    farm::SweepCell cell;
    cell.id = 0;
    cell.model = "plb";
    cell.workload = "zipf";
    cell.seed = 1;
    cell.config = core::SystemConfig::plbSystem();
    cell.references = 100'000;
    cell.makeStream = farm::standardStreams()[2].second;
    farm::CellExecution exec(cell, 1);
    exec.step(50'000);
    u64 bytes = 0;
    for (auto _ : state) {
        const snap::Snapshot image = exec.checkpoint();
        bytes = image.bytes.size();
        benchmark::DoNotOptimize(image.bytes.data());
    }
    state.counters["imageBytes"] = static_cast<double>(bytes);
}

} // namespace

BENCHMARK(BM_FrameEncodeDecode)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_WorkerCheckpoint)->Unit(benchmark::kMicrosecond);

int
main(int argc, char **argv)
{
    return bench::runMain(argc, argv, runFarmBench);
}
