/**
 * @file
 * Experiment T1.b: Table 1 "Concurrent Garbage Collection" (after
 * Appel, Ellis & Li).
 *
 * Rows reproduced:
 *  - "Flip Spaces": domain-page pays a PLB scan to revoke from-space;
 *    page-group swaps group identifiers in O(1);
 *  - "Access unscanned to-space": one trap + upcall + rights update
 *    per page touched, on every model.
 */

#include "bench_common.hh"

#include "workload/gc.hh"

using namespace sasos;

namespace
{

void
printGcTable(const Options &options)
{
    bench::printHeader(
        "Table 1: Concurrent Garbage Collection",
        "Appel-Ellis-Li: flip spaces, then scan pages on mutator "
        "faults. Flip = detach(from-space) + attach(to-space, "
        "collector RW / mutator none).");

    wl::GcConfig gc;
    gc.collections = options.getU64("collections", 8);
    gc.spacePages = options.getU64("spacePages", 64);
    gc.allocsPerCollection = options.getU64("allocs", 256);
    gc.refsPerAlloc = options.getU64("refsPerAlloc", 32);

    TextTable table({"system", "flips", "cycles/flip", "scan faults",
                     "cycles/scan-fault", "total cycles (excl io)",
                     "vs plb"});
    double plb_total = 0.0;
    for (const auto &model : bench::standardModels(options)) {
        core::System sys(model.config);
        const wl::GcResult result = wl::GcWorkload(gc).run(sys);
        const double total = static_cast<double>(
            result.cycles.totalExcludingIo().count());
        if (plb_total == 0.0)
            plb_total = total;
        const double trap_and_upcall =
            static_cast<double>(
                result.cycles.byCategory(CostCategory::Trap).count() +
                result.cycles.byCategory(CostCategory::Upcall).count());
        table.addRow(
            {model.label, TextTable::num(result.flips),
             TextTable::num(result.flips
                                ? static_cast<double>(result.flipCycles) /
                                      result.flips
                                : 0.0,
                            0),
             TextTable::num(result.scanFaults),
             TextTable::num(result.scanFaults
                                ? trap_and_upcall / result.scanFaults
                                : 0.0,
                            0),
             TextTable::num(static_cast<u64>(total)),
             bench::normalized(total, plb_total)});
    }
    table.print(std::cout);
    std::cout << "shape check: page-group flip cycles < plb flip cycles "
                 "(O(1) group swap vs PLB scan)\n";
}

void
printFlipScalingTable(const Options &options)
{
    bench::printHeader(
        "Flip cost vs semi-space size",
        "The PLB flip scans hardware state; the page-group flip does "
        "not, so its cost stays flat as the heap grows.");

    TextTable table({"space pages", "plb cycles/flip",
                     "page-group cycles/flip", "plb/page-group"});
    for (u64 pages : {16, 64, 256}) {
        wl::GcConfig gc;
        gc.collections = 4;
        gc.spacePages = pages;
        gc.allocsPerCollection = 64;
        gc.refsPerAlloc = 8;
        double per_flip[2] = {0, 0};
        int index = 0;
        for (const auto &model : bench::standardModels(options)) {
            if (model.label == "conventional")
                continue;
            core::System sys(model.config);
            const wl::GcResult result = wl::GcWorkload(gc).run(sys);
            per_flip[index++] =
                result.flips ? static_cast<double>(result.flipCycles) /
                                   result.flips
                             : 0.0;
        }
        table.addRow({TextTable::num(pages),
                      TextTable::num(per_flip[0], 0),
                      TextTable::num(per_flip[1], 0),
                      TextTable::ratio(per_flip[1] > 0
                                           ? per_flip[0] / per_flip[1]
                                           : 0.0,
                                       1)});
    }
    table.print(std::cout);
}

void
BM_GcRun(benchmark::State &state, core::ModelKind kind)
{
    wl::GcConfig gc;
    gc.collections = 3;
    gc.spacePages = 32;
    gc.allocsPerCollection = 64;
    gc.refsPerAlloc = 8;
    u64 sim_cycles = 0;
    u64 flips = 0;
    for (auto _ : state) {
        core::System sys(core::SystemConfig::forModel(kind));
        const wl::GcResult result = wl::GcWorkload(gc).run(sys);
        sim_cycles += result.cycles.totalExcludingIo().count();
        flips += result.flips;
    }
    state.counters["simCyclesPerFlip"] =
        flips ? static_cast<double>(sim_cycles) / static_cast<double>(flips)
              : 0.0;
}

} // namespace

BENCHMARK_CAPTURE(BM_GcRun, plb, core::ModelKind::Plb)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_GcRun, pagegroup, core::ModelKind::PageGroup)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_GcRun, conventional, core::ModelKind::Conventional)
    ->Unit(benchmark::kMillisecond);

int
main(int argc, char **argv)
{
    return bench::runMain(argc, argv, [](const Options &options) {
        printGcTable(options);
        printFlipScalingTable(options);
        return 0;
    });
}
