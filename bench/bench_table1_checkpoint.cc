/**
 * @file
 * Experiment T1.e: Table 1 "Concurrent Checkpoint" (after Li,
 * Naughton & Plank).
 *
 * Rows reproduced:
 *  - "Restrict Access": drop the application to read-only over the
 *    whole segment at once (PLB: inspect each entry; page-group: a
 *    segment-wide rights change);
 *  - "Checkpoint Page": per-page trap -> disk write -> reopen
 *    read-write.
 */

#include "bench_common.hh"

#include "workload/checkpoint.hh"

using namespace sasos;

namespace
{

void
printCheckpointTable(const Options &options)
{
    bench::printHeader(
        "Table 1: Concurrent Checkpoint",
        "Copy-on-write checkpoint of a live segment, with a "
        "background sweeper.");

    wl::CheckpointConfig ckpt;
    ckpt.checkpoints = options.getU64("checkpoints", 4);
    ckpt.dataPages = options.getU64("dataPages", 64);
    ckpt.refsBetween = options.getU64("refsBetween", 4000);

    TextTable table({"system", "checkpoints", "cow faults", "swept",
                     "restrict cycles/ckpt",
                     "total cycles (excl disk)", "vs plb"});
    double plb_total = 0.0;
    for (const auto &model : bench::standardModels(options)) {
        core::System sys(model.config);
        const wl::CheckpointResult result =
            wl::CheckpointWorkload(ckpt).run(sys);
        const double total = static_cast<double>(
            result.cycles.totalExcludingIo().count());
        if (plb_total == 0.0)
            plb_total = total;
        table.addRow(
            {model.label, TextTable::num(result.checkpoints),
             TextTable::num(result.copyOnWriteFaults),
             TextTable::num(result.sweptPages),
             TextTable::num(result.checkpoints
                                ? static_cast<double>(
                                      result.restrictCycles) /
                                      result.checkpoints
                                : 0.0,
                            0),
             TextTable::num(static_cast<u64>(total)),
             bench::normalized(total, plb_total)});
    }
    table.print(std::cout);
}

void
printRestrictScaling(const Options &options)
{
    bench::printHeader(
        "Restrict-access cost vs segment size",
        "The per-checkpoint restrict step: the PLB model inspects "
        "hardware entries; cost comparison as the protected segment "
        "grows.");

    TextTable table({"data pages", "plb restrict", "page-group restrict",
                     "conventional restrict", "pkey restrict"});
    for (u64 pages : {32, 64, 128}) {
        wl::CheckpointConfig ckpt;
        ckpt.checkpoints = 2;
        ckpt.dataPages = pages;
        ckpt.refsBetween = 1500;
        std::vector<std::string> row{TextTable::num(pages)};
        for (const auto &model : bench::standardModels(options)) {
            core::System sys(model.config);
            const wl::CheckpointResult result =
                wl::CheckpointWorkload(ckpt).run(sys);
            row.push_back(TextTable::num(
                result.checkpoints
                    ? static_cast<double>(result.restrictCycles) /
                          result.checkpoints
                    : 0.0,
                0));
        }
        table.addRow(row);
    }
    table.print(std::cout);
}

void
BM_CheckpointRun(benchmark::State &state, core::ModelKind kind)
{
    wl::CheckpointConfig ckpt;
    ckpt.checkpoints = 2;
    ckpt.dataPages = 32;
    ckpt.refsBetween = 800;
    u64 sim_cycles = 0;
    u64 checkpoints = 0;
    for (auto _ : state) {
        core::System sys(core::SystemConfig::forModel(kind));
        const wl::CheckpointResult result =
            wl::CheckpointWorkload(ckpt).run(sys);
        sim_cycles += result.cycles.totalExcludingIo().count();
        checkpoints += result.checkpoints;
    }
    state.counters["simCyclesPerCkpt"] =
        checkpoints ? static_cast<double>(sim_cycles) /
                          static_cast<double>(checkpoints)
                    : 0.0;
}

} // namespace

BENCHMARK_CAPTURE(BM_CheckpointRun, plb, core::ModelKind::Plb)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_CheckpointRun, pagegroup, core::ModelKind::PageGroup)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_CheckpointRun, conventional,
                  core::ModelKind::Conventional)
    ->Unit(benchmark::kMillisecond);

int
main(int argc, char **argv)
{
    return bench::runMain(argc, argv, [](const Options &options) {
        printCheckpointTable(options);
        printRestrictScaling(options);
        return 0;
    });
}
