/**
 * @file
 * Shared plumbing for the bench binaries.
 *
 * Every bench prints its paper-artifact table(s) first, then runs its
 * registered google-benchmark timings (which carry simulated-cycle
 * counters). Options of the form key=value are consumed before
 * google-benchmark sees argv.
 */

#ifndef SASOS_BENCH_BENCH_COMMON_HH
#define SASOS_BENCH_BENCH_COMMON_HH

#include <benchmark/benchmark.h>

#include <cmath>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "obs/tracer.hh"
#include "sasos.hh"
#include "sim/logging.hh"

namespace sasos::bench
{

/**
 * The shared bench main(): parse key=value options, honor help=1,
 * run the paper tables under an Options-driven trace session
 * (trace=/trace_out=/trace_buf=), then the registered
 * google-benchmark timings. Returns the body's status.
 */
inline int
runMain(int argc, char **argv,
        const std::function<int(const Options &)> &body)
{
    Options options;
    options.parseArgs(argc, argv);
    if (options.getBool("help", false)) {
        std::cout << Options::helpText();
        return 0;
    }
    int status = 0;
    {
        // The trace session closes (and writes its JSON) before the
        // google-benchmark timings run, so timing loops never trace.
        obs::ScopedTrace trace(options);
        status = body(options);
    }
    std::cout << "\n";
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return status;
}

/** Honor stats_out=FILE for a bench's primary system; the extension
 * picks the format (.csv, else JSON). */
inline void
maybeExportStats(const Options &options, core::System &sys)
{
    const std::string path = options.getString("stats_out", "");
    if (path.empty())
        return;
    std::ofstream os(path);
    if (!os)
        SASOS_FATAL("cannot open stats_out file '", path, "'");
    if (path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0)
        sys.dumpStatsCsv(os);
    else
        sys.dumpStatsJson(os);
    inform("wrote stats to ", path);
}

/** A labeled machine configuration to compare. */
struct ModelUnderTest
{
    std::string label;
    core::SystemConfig config;
};

/** The paper's primary comparison set, plus the MPK-style
 * protection-key model fed through the same differential apparatus. */
inline std::vector<ModelUnderTest>
standardModels(const Options &options)
{
    return {
        {"plb", core::SystemConfig::fromOptions(
                    options, core::SystemConfig::plbSystem())},
        {"page-group", core::SystemConfig::fromOptions(
                           options, core::SystemConfig::pageGroupSystem())},
        {"conventional", core::SystemConfig::fromOptions(
                             options,
                             core::SystemConfig::conventionalSystem())},
        {"pkey", core::SystemConfig::fromOptions(
                     options, core::SystemConfig::pkeySystem())},
    };
}

/** The comparison set extended with the purge-on-switch baseline and
 * the four-PID-register PA-RISC variant. */
inline std::vector<ModelUnderTest>
extendedModels(const Options &options)
{
    std::vector<ModelUnderTest> models = standardModels(options);
    models.push_back(
        {"conv-purge", core::SystemConfig::fromOptions(
                           options,
                           core::SystemConfig::purgingConventionalSystem())});
    models.push_back(
        {"pg-4regs", core::SystemConfig::fromOptions(
                         options, core::SystemConfig::pidRegisterSystem())});
    return models;
}

/** Print a section header for one artifact. */
inline void
printHeader(const std::string &artifact, const std::string &claim)
{
    std::cout << "\n==== " << artifact << " ====\n";
    if (!claim.empty())
        std::cout << claim << "\n";
    std::cout << "\n";
}

/** Per-mille-accurate ratio string ("1.00x" baseline); "-" whenever
 * the ratio is not finite (zero, NaN or infinite baseline/value), so
 * a model recording zero cycles cannot leak NaN/inf into tables. */
inline std::string
normalized(double value, double baseline)
{
    if (baseline == 0.0)
        return "-";
    const double ratio = value / baseline;
    if (!std::isfinite(ratio))
        return "-";
    return TextTable::ratio(ratio, 2);
}

/** Host-side throughput: simulated references per wall-clock second. */
inline double
refsPerSecond(u64 references, double wall_seconds)
{
    if (wall_seconds <= 0.0)
        return 0.0;
    return static_cast<double>(references) / wall_seconds;
}

/** Simulated cycles per reference; 0 when nothing was issued. */
inline double
cyclesPerRef(u64 cycles, u64 references)
{
    if (references == 0)
        return 0.0;
    return static_cast<double>(cycles) / static_cast<double>(references);
}

} // namespace sasos::bench

#endif // SASOS_BENCH_BENCH_COMMON_HH
