/**
 * @file
 * Ablations: robustness of the headline comparisons to the knobs the
 * paper leaves open.
 *
 *  - cost constants: the C4b static-vs-dynamic sharing crossover is
 *    re-run under cheap and expensive kernel traps -- the *ordering*
 *    must survive, only the crossover point moves;
 *  - page-group cache size (Wilkes & Sears) vs the original four
 *    registers: miss pressure vs active segment count;
 *  - eager vs lazy page-group reload on switches;
 *  - PLB capacity: when replication exceeds capacity, miss rate
 *    takes off (the size a PLB must be to hold D sharers' entries).
 */

#include "bench_common.hh"

#include "workload/rpc.hh"
#include "workload/sharing.hh"

using namespace sasos;

namespace
{

void
printTrapSensitivity(const Options &options)
{
    bench::printHeader(
        "Ablation A1: C4b crossover vs kernel-trap cost",
        "The regime winner (static -> page-group, dynamic -> plb) "
        "must hold across trap costs; only the crossover moves.");

    TextTable table({"kernelTrap", "regime", "plb cycles/ref",
                     "page-group cycles/ref", "winner"});
    for (u64 trap : {50, 200, 800}) {
        for (u64 period : {u64{0}, u64{2}}) {
            wl::SharingConfig sharing;
            sharing.domains = 8;
            sharing.sharedSegments = 2;
            sharing.sharedPages = 16;
            sharing.privatePages = 4;
            sharing.quanta = 120;
            sharing.refsPerQuantum = 50;
            sharing.sharedFraction = 0.9;
            sharing.protChangePeriod = period;

            double cycles[2] = {0, 0};
            int index = 0;
            for (core::ModelKind kind :
                 {core::ModelKind::Plb, core::ModelKind::PageGroup}) {
                core::SystemConfig config =
                    core::SystemConfig::forModel(kind);
                config.costs.set("kernelTrap", trap);
                if (kind == core::ModelKind::Plb) {
                    config.superPagePlb = false;
                    config.plb.sizeShifts = {vm::kPageShift};
                    config.plb.ways = config.tlb.ways;
                }
                core::System sys(config);
                cycles[index++] =
                    wl::SharingWorkload(sharing).run(sys).cyclesPerRef();
            }
            table.addRow({TextTable::num(trap),
                          period == 0 ? "static" : "dynamic",
                          TextTable::num(cycles[0], 2),
                          TextTable::num(cycles[1], 2),
                          cycles[0] < cycles[1] ? "plb" : "page-group"});
        }
    }
    table.print(std::cout);
    (void)options;
}

void
printPgCacheSizeSweep(const Options &options)
{
    bench::printHeader(
        "Ablation A2: page-group cache size (Wilkes & Sears) vs the "
        "four PID registers",
        "A domain cycling over N attached segments; refill faults per "
        "1000 references.");

    TextTable table({"active segments", "4 regs (random)", "8 (lru)",
                     "16 (lru)", "64 (lru)"});
    for (u64 segments : {4, 8, 16, 32}) {
        std::vector<std::string> row{TextTable::num(segments)};
        struct Variant
        {
            std::size_t entries;
            hw::PolicyKind policy;
        };
        for (const Variant &variant :
             {Variant{4, hw::PolicyKind::Random},
              Variant{8, hw::PolicyKind::Lru},
              Variant{16, hw::PolicyKind::Lru},
              Variant{64, hw::PolicyKind::Lru}}) {
            core::SystemConfig config =
                core::SystemConfig::pageGroupSystem();
            config.pgCache.entries = variant.entries;
            config.pgCache.policy = variant.policy;
            core::System sys(config);
            auto &kernel = sys.kernel();
            const os::DomainId d = kernel.createDomain("app");
            std::vector<vm::VAddr> bases;
            for (u64 s = 0; s < segments; ++s) {
                const vm::SegmentId seg = kernel.createSegment(
                    "s" + std::to_string(s), 4);
                kernel.attach(d, seg, vm::Access::ReadWrite);
                bases.push_back(sys.state().segments.find(seg)->base());
            }
            kernel.switchTo(d);
            Rng rng(31);
            const u64 refs = 2000;
            for (u64 r = 0; r < refs; ++r)
                sys.load(bases[rng.nextBelow(segments)] +
                         rng.nextBelow(4 * vm::kPageBytes));
            const u64 refills =
                sys.pageGroupSystem()->pgCacheRefills.value();
            row.push_back(
                TextTable::num(1000.0 * refills / refs, 1));
        }
        table.addRow(row);
    }
    table.print(std::cout);
    (void)options;
}

void
printEagerVsLazy(const Options &options)
{
    bench::printHeader(
        "Ablation A3: eager vs lazy page-group reload (Section 4.1.4)",
        "\"The page-group cache can be reloaded lazily via protection "
        "faults, but for performance reasons it may be advantageous "
        "to explicitly reload it.\" RPC calls with growing numbers of "
        "attached segments per side.");

    TextTable table({"segments/side", "lazy cycles/call",
                     "eager cycles/call", "eager wins?"});
    for (u64 extra : {0, 2, 8}) {
        double per_call[2] = {0, 0};
        int index = 0;
        for (bool eager : {false, true}) {
            core::SystemConfig config =
                core::SystemConfig::pageGroupSystem();
            config.eagerPgReload = eager;
            core::System sys(config);
            auto &kernel = sys.kernel();
            // Pre-attach extra segments to both RPC parties by
            // creating them inside the workload's domains is not
            // possible from here, so emulate: run the RPC and add
            // extra attached-but-idle segments to every domain the
            // workload creates afterward would be too late. Instead
            // measure the switch+refill directly.
            const os::DomainId a = kernel.createDomain("a");
            const os::DomainId b = kernel.createDomain("b");
            std::vector<vm::VAddr> a_bases, b_bases;
            for (u64 s = 0; s < extra + 1; ++s) {
                const vm::SegmentId sa = kernel.createSegment(
                    "a" + std::to_string(s), 2);
                const vm::SegmentId sb = kernel.createSegment(
                    "b" + std::to_string(s), 2);
                kernel.attach(a, sa, vm::Access::ReadWrite);
                kernel.attach(b, sb, vm::Access::ReadWrite);
                a_bases.push_back(sys.state().segments.find(sa)->base());
                b_bases.push_back(sys.state().segments.find(sb)->base());
            }
            // Warm.
            kernel.switchTo(a);
            for (const vm::VAddr base : a_bases)
                sys.load(base);
            kernel.switchTo(b);
            for (const vm::VAddr base : b_bases)
                sys.load(base);
            const u64 before = sys.cycles().count();
            const u64 calls = 100;
            for (u64 c = 0; c < calls; ++c) {
                kernel.switchTo(a);
                for (const vm::VAddr base : a_bases)
                    sys.load(base);
                kernel.switchTo(b);
                for (const vm::VAddr base : b_bases)
                    sys.load(base);
            }
            per_call[index++] =
                static_cast<double>(sys.cycles().count() - before) /
                calls;
        }
        table.addRow({TextTable::num(extra + 1),
                      TextTable::num(per_call[0], 1),
                      TextTable::num(per_call[1], 1),
                      per_call[1] < per_call[0] ? "yes" : "no"});
    }
    table.print(std::cout);
    (void)options;
}

void
printPlbCapacitySweep(const Options &options)
{
    bench::printHeader(
        "Ablation A4: PLB capacity under replication",
        "8 domains sharing hot pages; page-grain entries. The PLB "
        "needs capacity for (domains x pages); below that, misses "
        "climb.");

    TextTable table({"plb entries", "occupancy", "plb miss rate",
                     "cycles/ref"});
    for (u64 entries : {32, 64, 128, 256, 512}) {
        wl::SharingConfig sharing;
        sharing.domains = 8;
        sharing.sharedSegments = 2;
        sharing.sharedPages = 16;
        sharing.privatePages = 4;
        sharing.quanta = 80;
        sharing.refsPerQuantum = 50;
        sharing.sharedFraction = 0.9;

        core::SystemConfig config = core::SystemConfig::plbSystem();
        config.superPagePlb = false;
        config.plb.sizeShifts = {vm::kPageShift};
        config.plb.ways = entries;
        core::System sys(config);
        const wl::SharingResult result =
            wl::SharingWorkload(sharing).run(sys);
        table.addRow({TextTable::num(entries),
                      TextTable::num(result.occupancyEntries),
                      TextTable::num(result.missRate() * 100.0, 2) + "%",
                      TextTable::num(result.cyclesPerRef(), 2)});
    }
    table.print(std::cout);
    (void)options;
}

void
BM_AblationRpc(benchmark::State &state, u64 trap_cost)
{
    core::SystemConfig config = core::SystemConfig::plbSystem();
    config.costs.set("kernelTrap", trap_cost);
    wl::RpcConfig rpc;
    rpc.calls = 100;
    u64 sim_cycles = 0;
    for (auto _ : state) {
        core::System sys(config);
        sim_cycles += wl::RpcWorkload(rpc).run(sys).cycles.total().count();
    }
    state.counters["simCycles"] = static_cast<double>(sim_cycles);
}

} // namespace

BENCHMARK_CAPTURE(BM_AblationRpc, cheapTrap, 50)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_AblationRpc, expensiveTrap, 800)
    ->Unit(benchmark::kMillisecond);

int
main(int argc, char **argv)
{
    return bench::runMain(argc, argv, [](const Options &options) {
        printTrapSensitivity(options);
        printPgCacheSizeSweep(options);
        printEagerVsLazy(options);
        printPlbCapacitySweep(options);
        return 0;
    });
}
