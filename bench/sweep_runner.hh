/**
 * @file
 * The parallel sweep driver: (model x workload x seed) cells over the
 * work-stealing pool.
 *
 * Each cell owns a complete core::System -- its VmState, kernel and
 * cycle account live inside the System object -- so cells share no
 * mutable state and run on any thread. Results are written into a
 * slot indexed by cell position, and every cell draws from its own
 * Rng seeded by the cell's seed, so a sweep's output (including the
 * full stats dump) is bit-identical whatever the thread count.
 *
 * Wall-clock time is the only nondeterministic field; it feeds the
 * refs/sec throughput report and the BENCH_sweep.json perf artifact,
 * never the simulated results.
 */

#ifndef SASOS_BENCH_SWEEP_RUNNER_HH
#define SASOS_BENCH_SWEEP_RUNNER_HH

#include <chrono>
#include <fstream>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hh"
#include "obs/tracer.hh"
#include "sasos.hh"
#include "sim/parallel.hh"
#include "workload/address_stream.hh"

namespace sasos::bench
{

/** Factory for a cell's reference stream over its heap segment. */
using StreamFactory = std::function<std::unique_ptr<wl::AddressStream>(
    vm::VAddr base, u64 pages, u64 seed)>;

/** One independent simulation cell of a sweep. */
struct SweepCell
{
    std::string model;
    std::string workload;
    u64 seed = 0;
    core::SystemConfig config;
    /** Heap segment size the stream ranges over. */
    u64 pages = 256;
    /** References to issue through the batched fast path. */
    u64 references = 200'000;
    vm::AccessType type = vm::AccessType::Load;
    StreamFactory makeStream;
};

/** What one cell produced. Everything except the wall-clock fields is
 * deterministic for a given cell definition. */
struct CellResult
{
    std::string model;
    std::string workload;
    u64 seed = 0;
    u64 references = 0;
    u64 completed = 0;
    u64 failed = 0;
    u64 simCycles = 0;
    /** Full stats + cycle-breakdown dump, for bit-identity checks. */
    std::string statsDump;
    double wallSeconds = 0.0;
    double refsPerSec = 0.0;
};

/** Runs sweep cells across a thread pool, deterministically. */
class SweepRunner
{
  public:
    /** @param threads worker count; 1 runs inline on the caller. */
    explicit SweepRunner(unsigned threads) : pool_(threads) {}

    unsigned threadCount() const { return pool_.threadCount(); }

    /** Run one cell start to finish on the calling thread.
     * @param tid logical trace thread-id stamped on the cell's
     * events (cell index + 1); keeps merged traces deterministic
     * whatever worker ran the cell. */
    static CellResult
    runCell(const SweepCell &cell, u32 tid = 0)
    {
        obs::setThreadId(tid);
        const auto start = std::chrono::steady_clock::now();
        core::System sys(cell.config);
        const os::DomainId app = sys.kernel().createDomain("app");
        const vm::SegmentId seg =
            sys.kernel().createSegment("heap", cell.pages);
        sys.kernel().attach(app, seg, vm::Access::ReadWrite);
        sys.kernel().switchTo(app);
        const vm::VAddr base = sys.state().segments.find(seg)->base();

        Rng rng(cell.seed);
        std::unique_ptr<wl::AddressStream> stream =
            cell.makeStream(base, cell.pages, cell.seed);
        const core::RunResult run =
            sys.run(*stream, cell.references, rng, cell.type);
        const auto stop = std::chrono::steady_clock::now();

        CellResult result;
        result.model = cell.model;
        result.workload = cell.workload;
        result.seed = cell.seed;
        result.references = cell.references;
        result.completed = run.completed;
        result.failed = run.failed;
        result.simCycles = sys.cycles().count();
        std::ostringstream dump;
        sys.dumpStats(dump);
        result.statsDump = dump.str();
        result.wallSeconds =
            std::chrono::duration<double>(stop - start).count();
        result.refsPerSec = result.wallSeconds > 0.0
                                ? static_cast<double>(cell.references) /
                                      result.wallSeconds
                                : 0.0;
        return result;
    }

    /** Run every cell; results come back in cell order regardless of
     * which thread ran what. */
    std::vector<CellResult>
    run(const std::vector<SweepCell> &cells)
    {
        std::vector<CellResult> results(cells.size());
        parallelFor(pool_, cells.size(), [&](u64 i) {
            results[i] = runCell(cells[i], static_cast<u32>(i) + 1);
        });
        return results;
    }

  private:
    ThreadPool pool_;
};

/**
 * Emit the machine-readable sweep artifact. Schema:
 *
 *   { "bench": "sweep", "threads": N,
 *     "wallSeconds": W, "serialWallSeconds": S, "speedup": S/W,
 *     "totals": { "cells": N, "references": R, "simCycles": C,
 *                 "refsPerSec": R/W },
 *     "cells": [ { "model", "workload", "seed", "references",
 *                  "completed", "failed", "simCycles",
 *                  "simCyclesPerRef", "wallSeconds", "refsPerSec" } ] }
 *
 * serialWallSeconds/speedup are 0 when no threads=1 reference run was
 * taken.
 */
inline void
writeSweepJson(const std::string &path,
               const std::vector<CellResult> &results, unsigned threads,
               double wall_seconds, double serial_wall_seconds = 0.0)
{
    u64 total_refs = 0;
    u64 total_cycles = 0;
    for (const CellResult &cell : results) {
        total_refs += cell.references;
        total_cycles += cell.simCycles;
    }
    std::ofstream os(path);
    obs::JsonWriter json(os);
    json.beginObject();
    json.member("bench", "sweep");
    json.member("threads", threads);
    json.member("wallSeconds", wall_seconds);
    json.member("serialWallSeconds", serial_wall_seconds);
    json.member("speedup", wall_seconds > 0.0
                               ? serial_wall_seconds / wall_seconds
                               : 0.0);
    json.key("totals");
    json.beginObject();
    json.member("cells", static_cast<u64>(results.size()));
    json.member("references", total_refs);
    json.member("simCycles", total_cycles);
    json.member("refsPerSec",
                wall_seconds > 0.0
                    ? static_cast<double>(total_refs) / wall_seconds
                    : 0.0);
    json.endObject();
    json.key("cells");
    json.beginArray();
    for (const CellResult &cell : results) {
        json.beginObject();
        json.member("model", cell.model);
        json.member("workload", cell.workload);
        json.member("seed", cell.seed);
        json.member("references", cell.references);
        json.member("completed", cell.completed);
        json.member("failed", cell.failed);
        json.member("simCycles", cell.simCycles);
        json.member("simCyclesPerRef",
                    cell.references
                        ? static_cast<double>(cell.simCycles) /
                              static_cast<double>(cell.references)
                        : 0.0);
        json.member("wallSeconds", cell.wallSeconds);
        json.member("refsPerSec", cell.refsPerSec);
        json.endObject();
    }
    json.endArray();
    json.endObject();
    os << "\n";
}

/** The sweep benches' standard stream recipes. */
inline std::vector<std::pair<std::string, StreamFactory>>
standardStreams()
{
    return {
        {"sequential",
         [](vm::VAddr base, u64 pages, u64) {
             return std::make_unique<wl::SequentialStream>(
                 base, pages * vm::kPageBytes, 64);
         }},
        {"uniform",
         [](vm::VAddr base, u64 pages, u64) {
             return std::make_unique<wl::UniformStream>(
                 base, pages * vm::kPageBytes);
         }},
        {"zipf",
         [](vm::VAddr base, u64 pages, u64 seed) {
             return std::make_unique<wl::ZipfPageStream>(base, pages, 0.8,
                                                         seed);
         }},
        {"working-set",
         [](vm::VAddr base, u64 pages, u64) {
             return std::make_unique<wl::WorkingSetStream>(
                 base, pages, pages / 8 ? pages / 8 : 1, 4096);
         }},
    };
}

} // namespace sasos::bench

#endif // SASOS_BENCH_SWEEP_RUNNER_HH
