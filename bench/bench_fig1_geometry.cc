/**
 * @file
 * Experiment F1/C1/C2: Figure 1 geometry and the paper's sizing
 * claims.
 *
 *  - Figure 1 field widths (52-bit VPN, 16-bit PD-ID, 3-bit rights);
 *  - C2: PLB entries ~25% smaller than page-group TLB entries, so
 *    more of them fit in the same silicon;
 *  - C1: a virtually tagged cache is ~10% larger than a physically
 *    tagged one at the paper's parameters (64-bit VA, 36-bit PA,
 *    32-byte lines).
 *
 * The google-benchmark section times the simulator's PLB and TLB
 * lookup paths (host ns; the simulated machine charges its own
 * cycles).
 */

#include "bench_common.hh"

using namespace sasos;
using namespace sasos::hw::sizing;

namespace
{

void
printFigure1()
{
    bench::printHeader(
        "Figure 1: PLB entry fields",
        "64-bit addresses, 4 KB pages, fully associative PLB.");
    SizingParams params;
    const EntryLayout plb = plbEntry(params);
    TextTable table({"field", "bits"});
    for (const Field &field : plb.fields)
        table.addRow({field.name, TextTable::num(field.bits)});
    table.addSeparator();
    table.addRow({"total", TextTable::num(plb.totalBits())});
    table.print(std::cout);
    std::cout << "paper: VPN 52 bits, PD-ID 16 bits, Rights 3 bits\n";
}

void
printEntryComparison()
{
    bench::printHeader(
        "C2: entry sizes across protection structures",
        "\"PLB entries are smaller than page-group TLB entries (about "
        "25%...) since they don't contain virtual-to-physical "
        "translations, allowing more entries in the same amount of "
        "space.\"");
    SizingParams params;
    struct Row
    {
        const char *name;
        EntryLayout layout;
    };
    const Row rows[] = {
        {"plb", plbEntry(params)},
        {"page-group tlb", pageGroupTlbEntry(params)},
        {"conventional tlb", conventionalTlbEntry(params)},
        {"translation-only tlb", translationTlbEntry(params)},
    };
    const double pg_bits =
        static_cast<double>(pageGroupTlbEntry(params).totalBits());
    TextTable table({"structure", "bits/entry", "vs page-group TLB",
                     "entries in 128-entry TLB's area"});
    for (const Row &row : rows) {
        table.addRow({row.name, TextTable::num(row.layout.totalBits()),
                      TextTable::num(
                          100.0 * (1.0 - row.layout.totalBits() / pg_bits),
                          1) + "% smaller",
                      TextTable::num(entriesInSameArea(
                          row.layout, pageGroupTlbEntry(params), 128))});
    }
    table.print(std::cout);
}

void
printCacheOverhead()
{
    bench::printHeader(
        "C1: virtually tagged vs physically tagged cache size",
        "\"in a system with 64-bit virtual addresses, 36-bit physical "
        "addresses and 32 byte cache lines, a virtually tagged cache "
        "would be about 10% larger\"");
    TextTable table({"cache", "line", "virtual-tag bits",
                     "physical-tag bits", "overhead"});
    for (u64 size_kb : {16, 64, 256}) {
        for (u32 line : {32u, 64u, 128u}) {
            CacheSizing cache;
            cache.sizeBytes = size_kb * 1024;
            cache.lineBytes = line;
            table.addRow({std::to_string(size_kb) + " KB",
                          std::to_string(line) + " B",
                          TextTable::num(
                              cacheTotalBits(cache, Tagging::Virtual)),
                          TextTable::num(
                              cacheTotalBits(cache, Tagging::Physical)),
                          TextTable::num(
                              100.0 * (virtualTagOverhead(cache) - 1.0),
                              1) + "%"});
        }
    }
    table.print(std::cout);
}

void
BM_PlbLookupHit(benchmark::State &state)
{
    stats::Group root("bench");
    hw::PlbConfig config;
    config.ways = static_cast<std::size_t>(state.range(0));
    hw::Plb plb(config, &root);
    Rng rng(7);
    for (std::size_t i = 0; i < config.ways; ++i) {
        plb.insert(static_cast<hw::DomainId>(1 + i % 4),
                   vm::VAddr(i * vm::kPageBytes), vm::kPageShift,
                   vm::Access::ReadWrite);
    }
    u64 found = 0;
    for (auto _ : state) {
        const u64 i = rng.nextBelow(config.ways);
        auto match = plb.lookup(static_cast<hw::DomainId>(1 + i % 4),
                                vm::VAddr(i * vm::kPageBytes));
        found += match.has_value();
    }
    benchmark::DoNotOptimize(found);
    state.counters["entries"] =
        static_cast<double>(config.ways);
}

void
BM_PageGroupCheck(benchmark::State &state)
{
    stats::Group root("bench");
    hw::PageGroupCacheConfig config;
    config.entries = static_cast<std::size_t>(state.range(0));
    hw::PageGroupCache cache(config, &root);
    for (std::size_t g = 1; g <= config.entries; ++g)
        cache.insert(static_cast<hw::GroupId>(g));
    Rng rng(9);
    u64 found = 0;
    for (auto _ : state) {
        const auto aid =
            static_cast<hw::GroupId>(1 + rng.nextBelow(config.entries));
        found += cache.lookup(aid).has_value();
    }
    benchmark::DoNotOptimize(found);
}

} // namespace

BENCHMARK(BM_PlbLookupHit)->Arg(64)->Arg(128)->Arg(1024);
BENCHMARK(BM_PageGroupCheck)->Arg(4)->Arg(16)->Arg(64);

int
main(int argc, char **argv)
{
    return bench::runMain(argc, argv, [](const Options &) {
        printFigure1();
        printEntryComparison();
        printCacheOverhead();
        return 0;
    });
}
