/**
 * @file
 * Concurrent copying garbage collection (Appel-Ellis-Li) driven by
 * protection faults, on a chosen protection architecture. Shows the
 * Table 1 "Concurrent Garbage Collection" rows live: the flip cost
 * and the per-page scan faults.
 *
 * Run: ./concurrent_gc [model=plb|pg|conv] [collections=N] ...
 */

#include <cstdio>
#include <iostream>

#include "sasos.hh"
#include "workload/gc.hh"

using namespace sasos;

int
main(int argc, char **argv)
{
    Options options;
    options.parseArgs(argc, argv);
    const core::SystemConfig config = core::SystemConfig::fromOptions(
        options, core::SystemConfig::plbSystem());

    wl::GcConfig gc;
    gc.collections = options.getU64("collections", gc.collections);
    gc.spacePages = options.getU64("spacePages", gc.spacePages);
    gc.allocsPerCollection =
        options.getU64("allocs", gc.allocsPerCollection);
    gc.seed = options.getU64("seed", gc.seed);

    std::printf("concurrent GC on the %s model: %lu collections over "
                "%lu-page semi-spaces\n",
                toString(config.model),
                static_cast<unsigned long>(gc.collections),
                static_cast<unsigned long>(gc.spacePages));

    core::System sys(config);
    wl::GcWorkload workload(gc);
    const wl::GcResult result = workload.run(sys);

    std::printf("\nflips: %lu\n", static_cast<unsigned long>(result.flips));
    std::printf("scan faults (pages collected on demand): %lu\n",
                static_cast<unsigned long>(result.scanFaults));
    std::printf("mutator references: %lu\n",
                static_cast<unsigned long>(result.mutatorRefs));
    std::printf("total cycles: %lu\n",
                static_cast<unsigned long>(result.cycles.total().count()));
    std::printf("flip cycles (Table 1 'Flip Spaces'): %lu (%.0f/flip)\n",
                static_cast<unsigned long>(result.flipCycles),
                result.flips ? static_cast<double>(result.flipCycles) /
                                   result.flips
                             : 0.0);

    std::printf("\ncycle breakdown:\n");
    sys.account().dump(std::cout, "  ");
    return 0;
}
