/**
 * @file
 * RPC ping-pong between a client and a server domain, the scenario
 * behind the paper's domain-switch cost argument (Section 4.1.4).
 * Runs the same calls on all three protection architectures and
 * prints a per-call cost comparison.
 *
 * Run: ./rpc_ping_pong [calls=N] [argBytes=N] [eagerPg=0|1] ...
 */

#include <cstdio>
#include <iostream>

#include "sasos.hh"
#include "workload/rpc.hh"

using namespace sasos;

namespace
{

wl::RpcResult
runOn(const core::SystemConfig &config, const wl::RpcConfig &rpc)
{
    core::System sys(config);
    wl::RpcWorkload workload(rpc);
    return workload.run(sys);
}

} // namespace

int
main(int argc, char **argv)
{
    Options options;
    options.parseArgs(argc, argv);

    wl::RpcConfig rpc;
    rpc.calls = options.getU64("calls", rpc.calls);
    rpc.argBytes = options.getU64("argBytes", rpc.argBytes);
    rpc.statePagesTouched =
        options.getU64("statePagesTouched", rpc.statePagesTouched);
    rpc.seed = options.getU64("seed", rpc.seed);

    TextTable table({"system", "cycles/call", "switch cycles/call",
                     "refill cycles/call"});

    struct Row
    {
        const char *label;
        core::SystemConfig config;
    };
    const Row rows[] = {
        {"plb", core::SystemConfig::fromOptions(
                    options, core::SystemConfig::plbSystem())},
        {"page-group (lazy)",
         core::SystemConfig::fromOptions(
             options, core::SystemConfig::pageGroupSystem())},
        {"conventional (asid)",
         core::SystemConfig::fromOptions(
             options, core::SystemConfig::conventionalSystem())},
        {"conventional (purge)",
         core::SystemConfig::fromOptions(
             options, core::SystemConfig::purgingConventionalSystem())},
    };

    for (const Row &row : rows) {
        const wl::RpcResult result = runOn(row.config, rpc);
        table.addRow({row.label,
                      TextTable::num(result.cyclesPerCall(), 1),
                      TextTable::num(
                          static_cast<double>(
                              result.cycles
                                  .byCategory(CostCategory::DomainSwitch)
                                  .count()) /
                              result.calls,
                          1),
                      TextTable::num(
                          static_cast<double>(
                              result.cycles.byCategory(CostCategory::Refill)
                                  .count()) /
                              result.calls,
                          1)});
    }

    std::printf("RPC ping-pong: %lu calls, %lu argument bytes\n\n",
                static_cast<unsigned long>(rpc.calls),
                static_cast<unsigned long>(rpc.argBytes));
    table.print(std::cout);
    std::printf("\nA PLB domain switch writes one register; the other "
                "systems pay in purges or replicated refills.\n");
    return 0;
}
