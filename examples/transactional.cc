/**
 * @file
 * Transactional virtual memory with page locking (IBM 801 style),
 * the paper's "Transactional VM" application. Transactions run in
 * their own protection domains; page touches acquire locks through
 * protection faults; commit returns the pages to the inaccessible
 * state. On the page-group model, watch the group splits and PID
 * pressure this causes (Section 4.1.2).
 *
 * Run: ./transactional [model=plb|pg|conv] [commits=N] ...
 */

#include <cstdio>
#include <iostream>

#include "sasos.hh"
#include "workload/txvm.hh"

using namespace sasos;

int
main(int argc, char **argv)
{
    Options options;
    options.parseArgs(argc, argv);
    const core::SystemConfig config = core::SystemConfig::fromOptions(
        options, core::SystemConfig::pageGroupSystem());

    wl::TxvmConfig tx;
    tx.commits = options.getU64("commits", tx.commits);
    tx.transactions = options.getU64("transactions", tx.transactions);
    tx.dbPages = options.getU64("dbPages", tx.dbPages);
    tx.pagesPerTx = options.getU64("pagesPerTx", tx.pagesPerTx);
    tx.writeFraction = options.getDouble("writeFraction", tx.writeFraction);
    tx.seed = options.getU64("seed", tx.seed);

    std::printf("transactional VM on the %s model: %lu commits, %lu "
                "concurrent transactions, %lu-page database\n",
                toString(config.model),
                static_cast<unsigned long>(tx.commits),
                static_cast<unsigned long>(tx.transactions),
                static_cast<unsigned long>(tx.dbPages));

    core::System sys(config);
    wl::TxvmWorkload workload(tx);
    const wl::TxvmResult result = workload.run(sys);

    std::printf("\ncommits:          %lu\n",
                static_cast<unsigned long>(result.commits));
    std::printf("aborts:           %lu\n",
                static_cast<unsigned long>(result.aborts));
    std::printf("read locks:       %lu\n",
                static_cast<unsigned long>(result.lockReadGrants));
    std::printf("write locks:      %lu\n",
                static_cast<unsigned long>(result.lockWriteGrants));
    std::printf("cycles:           %lu\n",
                static_cast<unsigned long>(result.cycles.total().count()));

    if (auto *pg = sys.pageGroupSystem()) {
        std::printf("\npage-group pressure (Section 4.1.2):\n");
        std::printf("  groups created: %lu\n",
                    static_cast<unsigned long>(
                        pg->manager().groupsCreated.value()));
        std::printf("  splits:         %lu\n",
                    static_cast<unsigned long>(
                        pg->manager().splits.value()));
        std::printf("  page moves:     %lu\n",
                    static_cast<unsigned long>(
                        pg->manager().pageMoves.value()));
        std::printf("  pg-cache misses: %lu\n",
                    static_cast<unsigned long>(
                        pg->pageGroupCache().misses.value()));
    }

    std::printf("\ncycle breakdown:\n");
    result.cycles.dump(std::cout, "  ");
    return 0;
}
