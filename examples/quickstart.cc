/**
 * @file
 * Quickstart: build a PLB machine, create two protection domains that
 * share a segment in the single address space, and watch what a
 * domain switch and a protection fault cost.
 *
 * Run: ./quickstart [model=plb|pg|conv] [key=value ...]
 */

#include <cstdio>
#include <iostream>

#include "sasos.hh"

using namespace sasos;

int
main(int argc, char **argv)
{
    Options options;
    options.parseArgs(argc, argv);
    const core::SystemConfig config = core::SystemConfig::fromOptions(
        options, core::SystemConfig::plbSystem());

    std::printf("sasos quickstart: %s model\n", toString(config.model));

    core::System sys(config);
    auto &kernel = sys.kernel();

    // Two protection domains in one 64-bit address space.
    const os::DomainId alice = kernel.createDomain("alice");
    const os::DomainId bob = kernel.createDomain("bob");

    // A shared segment: same virtual addresses in both domains, so
    // pointers stored inside it mean the same thing to both.
    const vm::SegmentId shared = kernel.createSegment("shared-heap", 16);
    kernel.attach(alice, shared, vm::Access::ReadWrite);
    kernel.attach(bob, shared, vm::Access::Read); // bob may only read

    const vm::VAddr base = sys.state().segments.find(shared)->base();

    // Alice writes a linked structure into the shared heap.
    kernel.switchTo(alice);
    for (u64 i = 0; i < 16; ++i)
        sys.store(base + i * vm::kPageBytes);
    std::printf("alice wrote 16 pages at 0x%lx\n",
                static_cast<unsigned long>(base.raw()));

    // Bob reads it through the *same* addresses -- no remapping, no
    // marshaling; this is the point of a single address space.
    kernel.switchTo(bob);
    for (u64 i = 0; i < 16; ++i)
        sys.load(base + i * vm::kPageBytes);
    std::printf("bob read the same 16 pages by the same addresses\n");

    // But protection still holds: bob cannot write.
    const bool wrote = sys.store(base);
    std::printf("bob's store was %s\n", wrote ? "ALLOWED (bug!)"
                                              : "denied by hardware");

    // Domain switches are cheap in a single address space system.
    const Cycles before = sys.account().byCategory(
        CostCategory::DomainSwitch);
    for (int i = 0; i < 100; ++i)
        kernel.switchTo(i % 2 == 0 ? alice : bob);
    const Cycles after = sys.account().byCategory(
        CostCategory::DomainSwitch);
    std::printf("100 domain switches cost %lu cycles (%.1f each)\n",
                static_cast<unsigned long>(after.count() - before.count()),
                (after.count() - before.count()) / 100.0);

    std::printf("\n--- statistics ---\n");
    sys.dumpStats(std::cout);
    return 0;
}
