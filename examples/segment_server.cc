/**
 * @file
 * Writing a custom user-level segment server -- the library's main
 * extension point, and Opal's: "user-level segment servers ...
 * control the semantics and the protection for each segment"
 * (paper Section 6).
 *
 * This example builds a *guarded log* segment: any domain may append
 * (fault -> the server grants write access to exactly one record
 * page at a time, revoking the previous one), but nothing may be
 * overwritten (writes to already-sealed pages are refused). The same
 * server code runs unchanged on all three protection architectures;
 * what changes underneath is which hardware structures the rights
 * flips touch.
 *
 * Run: ./segment_server [model=plb|pg|conv] [appends=N]
 */

#include <cstdio>
#include <iostream>

#include "sasos.hh"

using namespace sasos;

namespace
{

/** Append-only log discipline enforced with page protection. */
class AppendOnlyLogServer : public os::SegmentServer
{
  public:
    AppendOnlyLogServer(vm::Vpn first, u64 pages)
        : first_(first), pages_(pages)
    {
    }

    bool
    onProtectionFault(os::Kernel &kernel, os::DomainId domain,
                      vm::VAddr va, vm::AccessType type) override
    {
        const vm::Vpn vpn = vm::pageOf(va);
        if (type != vm::AccessType::Store)
            return false; // reads were already granted at attach
        const u64 index = vpn.number() - first_.number();
        if (index != sealed_) {
            // Not the current tail: either sealed history (refuse) or
            // a skip ahead (also refuse -- appends are in order).
            ++refusals_;
            return false;
        }
        // Grant the writer the tail page, revoking the previous
        // writer if the tail changed hands.
        if (writer_ != 0 && writer_ != domain)
            kernel.setPageRights(writer_, vpn, vm::Access::Read);
        kernel.setPageRights(domain, vpn, vm::Access::ReadWrite);
        writer_ = domain;
        ++grants_;
        return true;
    }

    /** The writer finished a record: seal the page for everyone. */
    void
    seal(os::Kernel &kernel)
    {
        if (writer_ == 0)
            return;
        const vm::Vpn tail(first_.number() + sealed_);
        kernel.setPageRights(writer_, tail, vm::Access::Read);
        writer_ = 0;
        ++sealed_;
    }

    u64 sealedPages() const { return sealed_; }
    u64 grants() const { return grants_; }
    u64 refusals() const { return refusals_; }

  private:
    vm::Vpn first_;
    u64 pages_;
    u64 sealed_ = 0;
    os::DomainId writer_ = 0;
    u64 grants_ = 0;
    u64 refusals_ = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    Options options;
    options.parseArgs(argc, argv);
    const core::SystemConfig config = core::SystemConfig::fromOptions(
        options, core::SystemConfig::plbSystem());
    const u64 appends = options.getU64("appends", 24);

    std::printf("append-only log served by a user-level segment server "
                "(%s model)\n",
                toString(config.model));

    core::System sys(config);
    auto &kernel = sys.kernel();

    const os::DomainId alice = kernel.createDomain("alice");
    const os::DomainId bob = kernel.createDomain("bob");

    const u64 log_pages = appends + 1;
    const vm::SegmentId log = kernel.createSegment("log", log_pages);
    // Everyone can read the log; nobody can write until the server
    // says so.
    kernel.attach(alice, log, vm::Access::Read);
    kernel.attach(bob, log, vm::Access::Read);

    const vm::Segment *seg = sys.state().segments.find(log);
    AppendOnlyLogServer server(seg->firstPage, log_pages);
    kernel.setSegmentServer(log, &server);
    const vm::VAddr base = seg->base();

    // Alice and Bob take turns appending records.
    for (u64 record = 0; record < appends; ++record) {
        const os::DomainId writer = record % 2 == 0 ? alice : bob;
        kernel.switchTo(writer);
        const vm::VAddr tail = base + record * vm::kPageBytes;
        const bool wrote = sys.store(tail); // faults; server grants
        SASOS_ASSERT(wrote, "append should have been granted");
        server.seal(kernel); // record complete; page becomes history
    }

    // History is immutable, for writers and readers alike.
    kernel.switchTo(alice);
    const bool tampered = sys.store(base); // first record, sealed
    const bool readable = sys.load(base);

    std::printf("\nappended %lu records (alice and bob alternating)\n",
                static_cast<unsigned long>(server.sealedPages()));
    std::printf("write grants:   %lu\n",
                static_cast<unsigned long>(server.grants()));
    std::printf("tamper attempt: %s\n",
                tampered ? "SUCCEEDED (bug!)" : "refused by the server");
    std::printf("history reads:  %s\n",
                readable ? "allowed" : "broken (bug!)");
    std::printf("server refusals: %lu\n",
                static_cast<unsigned long>(server.refusals()));

    std::printf("\ncycle breakdown:\n");
    sys.account().dump(std::cout, "  ");
    return tampered || !readable;
}
