/**
 * @file
 * Distributed shared memory via page protection (Li-style ownership
 * protocol), the paper's "Distributed VM" application. Each node is
 * a protection domain; get-readable/get-writable/invalidate episodes
 * are counted and costed on the chosen architecture.
 *
 * Run: ./dsm_node [model=plb|pg|conv] [nodes=N] [sharedPages=N] ...
 */

#include <cstdio>
#include <iostream>

#include "sasos.hh"
#include "workload/dvm.hh"

using namespace sasos;

int
main(int argc, char **argv)
{
    Options options;
    options.parseArgs(argc, argv);
    const core::SystemConfig config = core::SystemConfig::fromOptions(
        options, core::SystemConfig::plbSystem());

    wl::DvmConfig dvm;
    dvm.nodes = options.getU64("nodes", dvm.nodes);
    dvm.sharedPages = options.getU64("sharedPages", dvm.sharedPages);
    dvm.quanta = options.getU64("quanta", dvm.quanta);
    dvm.storeFraction = options.getDouble("storeFraction",
                                          dvm.storeFraction);
    dvm.seed = options.getU64("seed", dvm.seed);

    std::printf("distributed VM on the %s model: %lu nodes sharing %lu "
                "pages\n",
                toString(config.model),
                static_cast<unsigned long>(dvm.nodes),
                static_cast<unsigned long>(dvm.sharedPages));

    core::System sys(config);
    wl::DvmWorkload workload(dvm);
    const wl::DvmResult result = workload.run(sys);

    std::printf("\nreferences:        %lu\n",
                static_cast<unsigned long>(result.references));
    std::printf("get-readable:      %lu\n",
                static_cast<unsigned long>(result.readFaults));
    std::printf("get-writable:      %lu\n",
                static_cast<unsigned long>(result.writeFaults));
    std::printf("invalidations:     %lu\n",
                static_cast<unsigned long>(result.invalidations));
    std::printf("cycles (total):    %lu\n",
                static_cast<unsigned long>(result.cycles.total().count()));
    std::printf("cycles (excl. network): %lu\n",
                static_cast<unsigned long>(
                    result.cycles.totalExcludingIo().count()));

    std::printf("\ncycle breakdown:\n");
    result.cycles.dump(std::cout, "  ");
    return 0;
}
