/**
 * @file
 * Record a reference trace once, then replay it against all three
 * protection architectures -- the methodology the benches use to keep
 * comparisons reference-for-reference identical, exposed as a
 * standalone tool.
 *
 * Run: ./trace_replay [refs=N] [seed=N] [keep=0|1]
 * (keep=1 leaves the trace file on disk and prints its first records
 * in text form.)
 */

#include <cstdio>
#include <filesystem>
#include <iostream>

#include "sasos.hh"
#include "trace/trace.hh"

using namespace sasos;

namespace
{

/** Deterministically synthesize a two-domain workload trace. */
void
recordTrace(const std::string &path, u64 refs, u64 seed)
{
    trace::TraceWriter writer(path);
    Rng rng(seed);
    // Addresses land in the first segment a fresh system creates
    // (the allocator starts at page 0x100).
    const u64 base = u64{0x100} << vm::kPageShift;
    u16 current = 1;
    writer.append(trace::TraceOp::Switch, current, vm::VAddr(0));
    for (u64 r = 0; r < refs; ++r) {
        if (rng.bernoulli(0.02)) { // occasional RPC-style switch
            current = current == 1 ? 2 : 1;
            writer.append(trace::TraceOp::Switch, current, vm::VAddr(0));
        }
        const u64 page = rng.nextBelow(16);
        const u64 offset = rng.nextBelow(vm::kPageBytes / 8) * 8;
        const vm::VAddr va(base + page * vm::kPageBytes + offset);
        const trace::TraceOp op = rng.bernoulli(0.3)
                                      ? trace::TraceOp::Store
                                      : trace::TraceOp::Load;
        writer.append(op, current, va);
    }
    std::printf("recorded %lu trace records to %s\n",
                static_cast<unsigned long>(writer.count()), path.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    Options options;
    options.parseArgs(argc, argv);
    const u64 refs = options.getU64("refs", 5000);
    const u64 seed = options.getU64("seed", 42);
    const bool keep = options.getBool("keep", false);

    const std::string path =
        (std::filesystem::temp_directory_path() / "sasos_example.trc")
            .string();
    recordTrace(path, refs, seed);

    if (keep) {
        std::printf("\nfirst records (text form):\n");
        trace::TraceReader reader(path);
        trace::TraceRecord record;
        for (int i = 0; i < 8 && reader.next(record); ++i)
            std::printf("  %s\n", trace::toText(record).c_str());
    }

    TextTable table({"machine", "simulated cycles", "failed refs"});
    for (core::ModelKind kind :
         {core::ModelKind::Plb, core::ModelKind::PageGroup,
          core::ModelKind::Conventional}) {
        core::System sys(core::SystemConfig::forModel(kind));
        auto &kernel = sys.kernel();
        const os::DomainId a = kernel.createDomain("a");
        const os::DomainId b = kernel.createDomain("b");
        const vm::SegmentId seg = kernel.createSegment("data", 16);
        kernel.attach(a, seg, vm::Access::ReadWrite);
        kernel.attach(b, seg, vm::Access::ReadWrite);

        trace::TraceReader reader(path);
        const trace::ReplayResult result =
            trace::replay(sys, reader, {{1, a}, {2, b}});
        table.addRow({toString(kind),
                      TextTable::num(sys.cycles().count()),
                      TextTable::num(result.failedReferences)});
    }
    std::printf("\nsame reference stream on each machine:\n");
    table.print(std::cout);

    if (!keep)
        std::remove(path.c_str());
    else
        std::printf("\ntrace kept at %s\n", path.c_str());
    return 0;
}
