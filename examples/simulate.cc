/**
 * @file
 * simulate: the general simulation driver.
 *
 * Runs any of the paper's application workloads on any protection
 * architecture with any configuration, and prints the full statistics
 * tree and cycle breakdown -- the one-binary entry point for poking
 * at the system.
 *
 * Run: ./simulate workload=<name> [model=plb|pg|conv] [key=value ...]
 *
 * Workloads: rpc, churn, sharing, gc, dvm, txvm, checkpoint, comppage,
 * stream (a raw reference stream through the batched fast path;
 * stream=seq|uniform|zipf|ws, refs=, pages=).
 * Common keys: model=, cacheKB=, lineBytes=, cacheOrg=, tlbEntries=,
 * plbEntries=, pgEntries=, eagerPg=, purgeOnSwitch=, flushOnSwitch=,
 * superPage=, l2=, frames=, seed=, cost.<name>=<cycles>.
 * Observability: trace=1 [trace_out= trace_buf=] records a Perfetto
 * trace of the run; stats_out=FILE.json|.csv exports the stats tree.
 */

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>

#include "obs/tracer.hh"
#include "sasos.hh"
#include "workload/address_stream.hh"
#include "workload/attach_churn.hh"
#include "workload/checkpoint.hh"
#include "workload/comppage.hh"
#include "workload/dvm.hh"
#include "workload/gc.hh"
#include "workload/rpc.hh"
#include "workload/sharing.hh"
#include "workload/txvm.hh"

using namespace sasos;

namespace
{

int
runWorkload(const std::string &name, core::System &sys,
            const Options &options)
{
    if (name == "rpc") {
        wl::RpcConfig config;
        config.calls = options.getU64("calls", config.calls);
        config.argBytes = options.getU64("argBytes", config.argBytes);
        config.seed = options.getU64("wseed", config.seed);
        const auto result = wl::RpcWorkload(config).run(sys);
        std::printf("rpc: %lu calls, %.1f cycles/call\n",
                    static_cast<unsigned long>(result.calls),
                    result.cyclesPerCall());
        return 0;
    }
    if (name == "churn") {
        wl::AttachChurnConfig config;
        config.episodes = options.getU64("episodes", config.episodes);
        config.seed = options.getU64("wseed", config.seed);
        const auto result = wl::AttachChurnWorkload(config).run(sys);
        std::printf("churn: %lu episodes, %.1f cycles/episode\n",
                    static_cast<unsigned long>(result.episodes),
                    result.cyclesPerEpisode());
        return 0;
    }
    if (name == "sharing") {
        wl::SharingConfig config;
        config.domains = options.getU64("domains", config.domains);
        config.quanta = options.getU64("quanta", config.quanta);
        config.protChangePeriod =
            options.getU64("protChangePeriod", config.protChangePeriod);
        config.seed = options.getU64("wseed", config.seed);
        const auto result = wl::SharingWorkload(config).run(sys);
        std::printf("sharing: %lu refs, %.2f cycles/ref, miss rate "
                    "%.2f%%, %lu protection entries live\n",
                    static_cast<unsigned long>(result.references),
                    result.cyclesPerRef(), result.missRate() * 100.0,
                    static_cast<unsigned long>(result.occupancyEntries));
        return 0;
    }
    if (name == "gc") {
        wl::GcConfig config;
        config.collections = options.getU64("collections",
                                            config.collections);
        config.spacePages = options.getU64("spacePages",
                                           config.spacePages);
        config.seed = options.getU64("wseed", config.seed);
        const auto result = wl::GcWorkload(config).run(sys);
        std::printf("gc: %lu flips, %lu scan faults, %lu flip cycles\n",
                    static_cast<unsigned long>(result.flips),
                    static_cast<unsigned long>(result.scanFaults),
                    static_cast<unsigned long>(result.flipCycles));
        return 0;
    }
    if (name == "dvm") {
        wl::DvmConfig config;
        config.nodes = options.getU64("nodes", config.nodes);
        config.quanta = options.getU64("quanta", config.quanta);
        config.storeFraction =
            options.getDouble("storeFraction", config.storeFraction);
        config.seed = options.getU64("wseed", config.seed);
        const auto result = wl::DvmWorkload(config).run(sys);
        std::printf("dvm: %lu refs, %lu get-readable, %lu get-writable, "
                    "%lu invalidations\n",
                    static_cast<unsigned long>(result.references),
                    static_cast<unsigned long>(result.readFaults),
                    static_cast<unsigned long>(result.writeFaults),
                    static_cast<unsigned long>(result.invalidations));
        return 0;
    }
    if (name == "txvm") {
        wl::TxvmConfig config;
        config.commits = options.getU64("commits", config.commits);
        config.transactions =
            options.getU64("transactions", config.transactions);
        config.pagesPerTx = options.getU64("pagesPerTx",
                                           config.pagesPerTx);
        config.seed = options.getU64("wseed", config.seed);
        const auto result = wl::TxvmWorkload(config).run(sys);
        std::printf("txvm: %lu commits, %lu aborts, %lu read locks, "
                    "%lu write locks\n",
                    static_cast<unsigned long>(result.commits),
                    static_cast<unsigned long>(result.aborts),
                    static_cast<unsigned long>(result.lockReadGrants),
                    static_cast<unsigned long>(result.lockWriteGrants));
        return 0;
    }
    if (name == "checkpoint") {
        wl::CheckpointConfig config;
        config.checkpoints = options.getU64("checkpoints",
                                            config.checkpoints);
        config.dataPages = options.getU64("dataPages", config.dataPages);
        config.seed = options.getU64("wseed", config.seed);
        const auto result = wl::CheckpointWorkload(config).run(sys);
        std::printf("checkpoint: %lu checkpoints, %lu cow faults, "
                    "%lu swept pages\n",
                    static_cast<unsigned long>(result.checkpoints),
                    static_cast<unsigned long>(result.copyOnWriteFaults),
                    static_cast<unsigned long>(result.sweptPages));
        return 0;
    }
    if (name == "comppage") {
        wl::CompPageConfig config;
        config.dataPages = options.getU64("dataPages", config.dataPages);
        config.frames = options.getU64("pagerFrames", config.frames);
        config.references =
            options.getU64("references", config.references);
        config.seed = options.getU64("wseed", config.seed);
        const auto result = wl::CompPageWorkload(config).run(sys);
        std::printf("comppage: %lu refs, %lu page-ins, %lu page-outs, "
                    "fault rate %.2f%%\n",
                    static_cast<unsigned long>(result.references),
                    static_cast<unsigned long>(result.pageIns),
                    static_cast<unsigned long>(result.pageOuts),
                    result.faultRate() * 100.0);
        return 0;
    }
    if (name == "stream") {
        // A raw reference stream through the batched System::run fast
        // path, with host-side throughput (refs/sec) reported.
        const u64 pages = options.getU64("pages", 256);
        const u64 refs = options.getU64("refs", 1'000'000);
        const u64 seed = options.getU64("wseed", 1);
        const std::string kind = options.getString("stream", "zipf");

        const os::DomainId app = sys.kernel().createDomain("app");
        const vm::SegmentId seg = sys.kernel().createSegment("heap",
                                                             pages);
        sys.kernel().attach(app, seg, vm::Access::ReadWrite);
        sys.kernel().switchTo(app);
        const vm::VAddr base = sys.state().segments.find(seg)->base();

        std::unique_ptr<wl::AddressStream> stream;
        if (kind == "seq") {
            stream = std::make_unique<wl::SequentialStream>(
                base, pages * vm::kPageBytes, 64);
        } else if (kind == "uniform") {
            stream = std::make_unique<wl::UniformStream>(
                base, pages * vm::kPageBytes);
        } else if (kind == "ws") {
            stream = std::make_unique<wl::WorkingSetStream>(
                base, pages, pages / 8 ? pages / 8 : 1, 4096);
        } else if (kind == "zipf") {
            stream = std::make_unique<wl::ZipfPageStream>(base, pages,
                                                          0.8, seed);
        } else {
            std::fprintf(stderr, "unknown stream '%s'\n", kind.c_str());
            return 2;
        }

        Rng rng(seed);
        const auto start = std::chrono::steady_clock::now();
        const core::RunResult result = sys.run(*stream, refs, rng);
        const auto stop = std::chrono::steady_clock::now();
        const double wall =
            std::chrono::duration<double>(stop - start).count();
        std::printf("stream(%s): %lu refs, %lu failed, %.2f sim "
                    "cycles/ref, %.2f Mrefs/s host\n",
                    kind.c_str(), static_cast<unsigned long>(refs),
                    static_cast<unsigned long>(result.failed),
                    static_cast<double>(sys.cycles().count()) /
                        static_cast<double>(refs ? refs : 1),
                    wall > 0.0 ? static_cast<double>(refs) / wall / 1e6
                               : 0.0);
        return 0;
    }
    std::fprintf(stderr,
                 "unknown workload '%s'; choose one of rpc, churn, "
                 "sharing, gc, dvm, txvm, checkpoint, comppage, stream\n",
                 name.c_str());
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    Options options;
    options.parseArgs(argc, argv);
    const std::string workload = options.getString("workload", "rpc");

    core::SystemConfig config = core::SystemConfig::fromOptions(
        options, core::SystemConfig::plbSystem());
    if (workload == "comppage") {
        // The paging workload needs frame pressure.
        config.frames = options.getU64("pagerFrames", 128);
    }

    std::printf("simulate: workload=%s model=%s\n", workload.c_str(),
                toString(config.model));

    core::System sys(config);
    const std::string stats_out = options.getString("stats_out", "");
    int status = 0;
    {
        obs::ScopedTrace trace(options);
        status = runWorkload(workload, sys, options);
    }
    if (status != 0)
        return status;

    for (const std::string &key : options.unusedKeys())
        warn("option '", key, "' was never used");

    if (!stats_out.empty()) {
        std::ofstream os(stats_out);
        if (!os)
            SASOS_FATAL("cannot open stats_out file '", stats_out, "'");
        if (stats_out.size() >= 4 &&
            stats_out.compare(stats_out.size() - 4, 4, ".csv") == 0) {
            sys.dumpStatsCsv(os);
        } else {
            sys.dumpStatsJson(os);
        }
        inform("wrote stats to ", stats_out);
    }

    std::printf("\n--- statistics ---\n");
    sys.dumpStats(std::cout);
    return 0;
}
