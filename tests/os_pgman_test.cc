/**
 * @file
 * Tests for the page-group manager: default groups, vector-keyed
 * splits, write-disable derivation, inexpressible-vector alternation
 * and group recycling -- the OS policy behind Section 4.1.2.
 */

#include <gtest/gtest.h>

#include "os/page_group_manager.hh"
#include "sim/stats.hh"

using namespace sasos;
using namespace sasos::os;

class PgManTest : public ::testing::Test
{
  protected:
    PgManTest() : state_(1024), root_("t"), mgr_(state_, &root_)
    {
        a_ = state_.createDomain("a").id;
        b_ = state_.createDomain("b").id;
        seg_ = state_.segments.create("seg", 8);
        first_ = state_.segments.find(seg_)->firstPage;
        mgr_.registerSegment(seg_);
    }

    void
    attach(DomainId d, vm::Access rights)
    {
        state_.domain(d).prot.attachSegment(seg_, rights);
        state_.noteAttached(d, seg_);
    }

    void
    override(DomainId d, vm::Vpn vpn, vm::Access rights)
    {
        state_.domain(d).prot.setPageRights(vpn, rights);
        state_.notePageOverride(d, vpn);
    }

    VmState state_;
    stats::Group root_;
    PageGroupManager mgr_;
    DomainId a_ = 0;
    DomainId b_ = 0;
    vm::SegmentId seg_ = 0;
    vm::Vpn first_;
};

TEST_F(PgManTest, DefaultGroupSharedByPlainPages)
{
    attach(a_, vm::Access::ReadWrite);
    const PageGroupState s0 = mgr_.pageState(first_);
    const PageGroupState s1 = mgr_.pageState(first_ + 1);
    EXPECT_EQ(s0.aid, s1.aid);
    EXPECT_EQ(s0.rights, vm::Access::ReadWrite);
    EXPECT_EQ(s0.aid, mgr_.defaultGroupOf(seg_));
}

TEST_F(PgManTest, UnmappedPageGoesToNullGroup)
{
    const PageGroupState s = mgr_.pageState(vm::Vpn(7));
    EXPECT_EQ(s.aid, kNullGroup);
    EXPECT_EQ(s.rights, vm::Access::None);
    EXPECT_FALSE(mgr_.domainHasGroup(a_, kNullGroup));
}

TEST_F(PgManTest, MembershipFollowsAttachment)
{
    attach(a_, vm::Access::ReadWrite);
    const GroupId aid = mgr_.defaultGroupOf(seg_);
    EXPECT_TRUE(mgr_.domainHasGroup(a_, aid));
    EXPECT_FALSE(mgr_.domainHasGroup(b_, aid));
    attach(b_, vm::Access::ReadWrite);
    EXPECT_TRUE(mgr_.domainHasGroup(b_, aid));
}

TEST_F(PgManTest, GlobalGroupBelongsToEveryone)
{
    EXPECT_TRUE(mgr_.domainHasGroup(a_, hw::kGlobalGroup));
    EXPECT_FALSE(mgr_.writeDisabled(a_, hw::kGlobalGroup));
}

TEST_F(PgManTest, WriteDisableBitForReadOnlyAttach)
{
    // Footnote 7 of the paper: a read-only domain in a read-write
    // group gets the D bit instead of a separate group.
    attach(a_, vm::Access::ReadWrite);
    attach(b_, vm::Access::Read);
    const GroupId aid = mgr_.defaultGroupOf(seg_);
    EXPECT_EQ(mgr_.pageState(first_).rights, vm::Access::ReadWrite);
    EXPECT_FALSE(mgr_.writeDisabled(a_, aid));
    EXPECT_TRUE(mgr_.writeDisabled(b_, aid));
    EXPECT_TRUE(mgr_.domainHasGroup(b_, aid));
}

TEST_F(PgManTest, HwRightsApplyDBit)
{
    attach(a_, vm::Access::ReadWrite);
    attach(b_, vm::Access::Read);
    EXPECT_EQ(mgr_.hwRights(a_, first_), vm::Access::ReadWrite);
    EXPECT_EQ(mgr_.hwRights(b_, first_), vm::Access::Read);
    EXPECT_EQ(mgr_.hwRights(999, first_), vm::Access::None);
}

TEST_F(PgManTest, OverrideSplitsPageIntoNewGroup)
{
    // Section 4.1.2: changing rights for a subset of domains forces
    // the page into another group.
    attach(a_, vm::Access::ReadWrite);
    attach(b_, vm::Access::ReadWrite);
    const GroupId default_aid = mgr_.defaultGroupOf(seg_);

    override(a_, first_, vm::Access::Read);
    const PageGroupState split = mgr_.regroupPage(first_);
    EXPECT_NE(split.aid, default_aid);
    EXPECT_EQ(mgr_.splits.value(), 1u);
    // Vector {a:R, b:RW} is expressible: rights RW, a gets D.
    EXPECT_EQ(split.rights, vm::Access::ReadWrite);
    EXPECT_TRUE(mgr_.writeDisabled(a_, split.aid));
    EXPECT_FALSE(mgr_.writeDisabled(b_, split.aid));
    // Other pages stay in the default group.
    EXPECT_EQ(mgr_.pageState(first_ + 1).aid, default_aid);
}

TEST_F(PgManTest, SameVectorSharesOneSplitGroup)
{
    attach(a_, vm::Access::ReadWrite);
    attach(b_, vm::Access::ReadWrite);
    override(a_, first_, vm::Access::Read);
    override(a_, first_ + 1, vm::Access::Read);
    const PageGroupState s0 = mgr_.regroupPage(first_);
    const PageGroupState s1 = mgr_.regroupPage(first_ + 1);
    EXPECT_EQ(s0.aid, s1.aid);
    EXPECT_EQ(mgr_.splits.value(), 1u);
}

TEST_F(PgManTest, ClearedOverrideFoldsBackToDefault)
{
    attach(a_, vm::Access::ReadWrite);
    override(a_, first_, vm::Access::Read);
    const PageGroupState split = mgr_.regroupPage(first_);
    EXPECT_NE(split.aid, mgr_.defaultGroupOf(seg_));

    state_.domain(a_).prot.clearPageRights(first_);
    state_.notePageOverrideCleared(a_, first_);
    const PageGroupState back = mgr_.regroupPage(first_);
    EXPECT_EQ(back.aid, mgr_.defaultGroupOf(seg_));
}

TEST_F(PgManTest, EmptySplitGroupIsRecycled)
{
    attach(a_, vm::Access::ReadWrite);
    override(a_, first_, vm::Access::Read);
    mgr_.regroupPage(first_);
    EXPECT_EQ(mgr_.groupsFreed.value(), 0u);

    state_.domain(a_).prot.clearPageRights(first_);
    state_.notePageOverrideCleared(a_, first_);
    mgr_.regroupPage(first_);
    EXPECT_EQ(mgr_.groupsFreed.value(), 1u);
}

TEST_F(PgManTest, MaskedPageMovesToExemptOnlyGroup)
{
    // The paging-server pattern: mask None with the pager exempt
    // puts the page in a group only the pager can use (Table 1).
    attach(a_, vm::Access::ReadWrite);
    const DomainId pager = state_.createDomain("pager").id;
    state_.domain(pager).prot.attachSegment(seg_, vm::Access::ReadWrite);
    state_.noteAttached(pager, seg_);

    state_.setPageMask(first_, vm::Access::None, pager);
    const PageGroupState s = mgr_.regroupPage(first_);
    EXPECT_TRUE(mgr_.domainHasGroup(pager, s.aid));
    EXPECT_FALSE(mgr_.domainHasGroup(a_, s.aid));
}

TEST_F(PgManTest, FullyMaskedPageInNullGroup)
{
    attach(a_, vm::Access::ReadWrite);
    state_.setPageMask(first_, vm::Access::None);
    const PageGroupState s = mgr_.regroupPage(first_);
    EXPECT_EQ(s.aid, kNullGroup);
}

TEST_F(PgManTest, InexpressibleVectorFavorsRequestedDomain)
{
    // {a: R, b: W} cannot be one (Rights, D) combination: read access
    // cannot be denied to b while granting it to a.
    attach(a_, vm::Access::Read);
    attach(b_, vm::Access::Write);
    override(a_, first_, vm::Access::Read);
    override(b_, first_, vm::Access::Write);

    const PageGroupState for_a = mgr_.regroupPageFor(first_, a_);
    EXPECT_TRUE(mgr_.domainHasGroup(a_, for_a.aid));
    EXPECT_FALSE(mgr_.domainHasGroup(b_, for_a.aid));
    EXPECT_GE(mgr_.inexpressible.value(), 1u);

    const PageGroupState for_b = mgr_.regroupPageFor(first_, b_);
    EXPECT_TRUE(mgr_.domainHasGroup(b_, for_b.aid));
    EXPECT_FALSE(mgr_.domainHasGroup(a_, for_b.aid));
    EXPECT_NE(for_a.aid, for_b.aid);
    // The page hopped between views: an alternation.
    EXPECT_GE(mgr_.alternations.value(), 1u);
}

TEST_F(PgManTest, GroupsOfDomainListsDefaultsAndSplits)
{
    attach(a_, vm::Access::ReadWrite);
    mgr_.defaultGroupOf(seg_);
    override(a_, first_, vm::Access::Read);
    attach(b_, vm::Access::ReadWrite);
    mgr_.regroupPage(first_);
    const auto groups = mgr_.groupsOf(a_);
    EXPECT_EQ(groups.size(), 2u); // default + split
}

TEST_F(PgManTest, GroupsOfSegment)
{
    attach(a_, vm::Access::ReadWrite);
    attach(b_, vm::Access::ReadWrite);
    mgr_.defaultGroupOf(seg_);
    override(a_, first_, vm::Access::Read);
    mgr_.regroupPage(first_);
    EXPECT_EQ(mgr_.groupsOfSegment(seg_).size(), 2u);
}

TEST_F(PgManTest, ReleaseSegmentFreesItsGroups)
{
    attach(a_, vm::Access::ReadWrite);
    mgr_.defaultGroupOf(seg_);
    override(a_, first_, vm::Access::Read);
    mgr_.regroupPage(first_);
    const std::size_t live = mgr_.liveGroups();
    EXPECT_EQ(live, 2u);
    mgr_.releaseSegment(seg_);
    EXPECT_EQ(mgr_.liveGroups(), 0u);
    EXPECT_EQ(mgr_.groupsFreed.value(), live);
}

TEST_F(PgManTest, AidRecyclingReusesFreedIds)
{
    attach(a_, vm::Access::ReadWrite);
    override(a_, first_, vm::Access::Read);
    const GroupId split = mgr_.regroupPage(first_).aid;
    state_.domain(a_).prot.clearPageRights(first_);
    state_.notePageOverrideCleared(a_, first_);
    mgr_.regroupPage(first_); // frees the split group
    override(a_, first_ + 1, vm::Access::Read);
    const GroupId reused = mgr_.regroupPage(first_ + 1).aid;
    EXPECT_EQ(reused, split);
}

TEST_F(PgManTest, PageMovesCounted)
{
    attach(a_, vm::Access::ReadWrite);
    override(a_, first_, vm::Access::Read);
    mgr_.regroupPage(first_);
    const u64 moves = mgr_.pageMoves.value();
    EXPECT_GE(moves, 1u);
    // Regrouping with no change moves nothing.
    mgr_.regroupPage(first_);
    EXPECT_EQ(mgr_.pageMoves.value(), moves);
}

TEST_F(PgManTest, DefaultRightsTrackAttaches)
{
    attach(a_, vm::Access::Read);
    EXPECT_EQ(mgr_.defaultRightsOf(seg_), vm::Access::Read);
    attach(b_, vm::Access::ReadWrite);
    EXPECT_EQ(mgr_.defaultRightsOf(seg_), vm::Access::ReadWrite);
}
