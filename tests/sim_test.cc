/**
 * @file
 * Unit tests for the sim substrate: types, stats, RNG, cost model,
 * options, tables, cycle accounting.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "sim/cost_model.hh"
#include "sim/cycle_account.hh"
#include "sim/options.hh"
#include "sim/random.hh"
#include "sim/stats.hh"
#include "sim/table.hh"
#include "sim/types.hh"

using namespace sasos;

TEST(CyclesTest, DefaultIsZero)
{
    EXPECT_EQ(Cycles().count(), 0u);
}

TEST(CyclesTest, AdditionAccumulates)
{
    Cycles c(5);
    c += Cycles(7);
    EXPECT_EQ(c.count(), 12u);
    EXPECT_EQ((c + Cycles(3)).count(), 15u);
}

TEST(CyclesTest, ScalingByCount)
{
    EXPECT_EQ((Cycles(3) * 4).count(), 12u);
    EXPECT_EQ((4 * Cycles(3)).count(), 12u);
}

TEST(CyclesTest, Comparisons)
{
    EXPECT_LT(Cycles(1), Cycles(2));
    EXPECT_EQ(Cycles(5), Cycles(5));
    EXPECT_GE(Cycles(9), Cycles(2));
}

TEST(StatsTest, ScalarCountsAndDumps)
{
    stats::Group root("root");
    stats::Scalar counter(&root, "hits", "cache hits");
    ++counter;
    counter += 4;
    EXPECT_EQ(counter.value(), 5u);

    std::ostringstream os;
    root.dump(os);
    EXPECT_NE(os.str().find("root.hits 5"), std::string::npos);
}

TEST(StatsTest, ScalarReset)
{
    stats::Group root("root");
    stats::Scalar counter(&root, "n", "");
    counter += 10;
    root.reset();
    EXPECT_EQ(counter.value(), 0u);
}

TEST(StatsTest, NestedGroupsDumpWithDottedPrefix)
{
    stats::Group root("sys");
    stats::Group child(&root, "tlb");
    stats::Scalar misses(&child, "misses", "");
    misses += 3;

    std::ostringstream os;
    root.dump(os);
    EXPECT_NE(os.str().find("sys.tlb.misses 3"), std::string::npos);
}

TEST(StatsTest, FindScalarByPath)
{
    stats::Group root("sys");
    stats::Group child(&root, "tlb");
    stats::Scalar misses(&child, "misses", "");
    misses += 7;

    const stats::Scalar *found = root.findScalar("tlb.misses");
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->value(), 7u);
    EXPECT_EQ(root.findScalar("tlb.nonexistent"), nullptr);
    EXPECT_EQ(root.findScalar("nothere.misses"), nullptr);
}

TEST(StatsTest, HistogramBucketsAndMoments)
{
    stats::Group root("root");
    stats::Histogram hist(&root, "lat", "", 10, 4);
    hist.sample(0);
    hist.sample(9);
    hist.sample(10);
    hist.sample(35);
    hist.sample(1000); // overflow

    EXPECT_EQ(hist.samples(), 5u);
    EXPECT_EQ(hist.bucket(0), 2u);
    EXPECT_EQ(hist.bucket(1), 1u);
    EXPECT_EQ(hist.bucket(3), 1u);
    EXPECT_EQ(hist.overflow(), 1u);
    EXPECT_EQ(hist.min(), 0u);
    EXPECT_EQ(hist.max(), 1000u);
    EXPECT_DOUBLE_EQ(hist.mean(), (0 + 9 + 10 + 35 + 1000) / 5.0);
}

TEST(StatsTest, FormulaEvaluatesAtDumpTime)
{
    stats::Group root("root");
    stats::Scalar hits(&root, "hits", "");
    stats::Scalar total(&root, "total", "");
    stats::Formula ratio(&root, "ratio", "", [&] {
        return total.value()
                   ? static_cast<double>(hits.value()) / total.value()
                   : 0.0;
    });
    hits += 3;
    total += 4;
    EXPECT_DOUBLE_EQ(ratio.value(), 0.75);
}

TEST(RandomTest, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RandomTest, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 4);
}

TEST(RandomTest, NextBelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.nextBelow(17), 17u);
}

TEST(RandomTest, NextRangeInclusive)
{
    Rng rng(7);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const u64 v = rng.nextRange(3, 6);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 6u);
        saw_lo |= v == 3;
        saw_hi |= v == 6;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(RandomTest, RealInUnitInterval)
{
    Rng rng(11);
    for (int i = 0; i < 1000; ++i) {
        const double r = rng.nextReal();
        EXPECT_GE(r, 0.0);
        EXPECT_LT(r, 1.0);
    }
}

TEST(RandomTest, BernoulliMatchesProbability)
{
    Rng rng(13);
    int heads = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        heads += rng.bernoulli(0.3);
    EXPECT_NEAR(heads / static_cast<double>(n), 0.3, 0.02);
}

TEST(RandomTest, ShuffleIsAPermutation)
{
    Rng rng(17);
    std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7};
    rng.shuffle(v);
    std::vector<int> sorted = v;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(sorted, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(ZipfTest, UniformWhenThetaZero)
{
    Rng rng(19);
    ZipfDistribution zipf(4, 0.0);
    std::vector<int> counts(4, 0);
    const int n = 40000;
    for (int i = 0; i < n; ++i)
        ++counts[zipf(rng)];
    for (int c : counts)
        EXPECT_NEAR(c / static_cast<double>(n), 0.25, 0.02);
}

TEST(ZipfTest, SkewFavorsLowRanks)
{
    Rng rng(23);
    ZipfDistribution zipf(100, 1.0);
    std::vector<int> counts(100, 0);
    for (int i = 0; i < 50000; ++i)
        ++counts[zipf(rng)];
    EXPECT_GT(counts[0], counts[10]);
    EXPECT_GT(counts[10], counts[99]);
}

TEST(GeometricTest, MeanMatches)
{
    Rng rng(29);
    GeometricDistribution geo(0.25);
    double sum = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(geo(rng));
    // Mean failures before success = (1-p)/p = 3.
    EXPECT_NEAR(sum / n, 3.0, 0.15);
}

TEST(CostModelTest, DefaultsAreNonTrivial)
{
    CostModel costs;
    EXPECT_GT(costs.kernelTrap.count(), 0u);
    EXPECT_GT(costs.memory.count(), costs.l1Hit.count());
    EXPECT_GT(costs.diskAccess.count(), costs.memory.count());
}

TEST(CostModelTest, SetByName)
{
    CostModel costs;
    EXPECT_TRUE(costs.set("kernelTrap", 999));
    EXPECT_EQ(costs.kernelTrap.count(), 999u);
    EXPECT_FALSE(costs.set("noSuchCost", 1));
}

TEST(CostModelTest, GetByName)
{
    CostModel costs;
    u64 value = 0;
    EXPECT_TRUE(costs.get("plbRefill", value));
    EXPECT_EQ(value, costs.plbRefill.count());
    EXPECT_FALSE(costs.get("bogus", value));
}

TEST(CostModelTest, NamesCoverEveryConstant)
{
    CostModel costs;
    const auto names = costs.names();
    EXPECT_GE(names.size(), 20u);
    for (const auto &name : names) {
        u64 value = 0;
        EXPECT_TRUE(costs.get(name, value)) << name;
    }
}

TEST(OptionsTest, ParsesKeyValueAndCompactsArgv)
{
    const char *raw[] = {"prog", "calls=10", "--benchmark_filter=x",
                         "--sasos-seed=7", "theta=0.5"};
    char *argv[5];
    for (int i = 0; i < 5; ++i)
        argv[i] = const_cast<char *>(raw[i]);
    int argc = 5;

    Options options;
    options.parseArgs(argc, argv);
    EXPECT_EQ(argc, 2); // prog + the benchmark flag survive
    EXPECT_STREQ(argv[1], "--benchmark_filter=x");
    EXPECT_EQ(options.getU64("calls", 0), 10u);
    EXPECT_EQ(options.getU64("seed", 0), 7u);
    EXPECT_DOUBLE_EQ(options.getDouble("theta", 0), 0.5);
}

TEST(OptionsTest, TypedGettersUseDefaults)
{
    Options options;
    EXPECT_EQ(options.getU64("missing", 42), 42u);
    EXPECT_EQ(options.getString("missing", "d"), "d");
    EXPECT_TRUE(options.getBool("missing", true));
}

TEST(OptionsTest, BoolParsing)
{
    Options options;
    options.set("a", "1");
    options.set("b", "false");
    options.set("c", "yes");
    EXPECT_TRUE(options.getBool("a", false));
    EXPECT_FALSE(options.getBool("b", true));
    EXPECT_TRUE(options.getBool("c", false));
}

TEST(OptionsTest, CostOverridesApply)
{
    Options options;
    options.set("cost.kernelTrap", "555");
    CostModel costs;
    options.applyCostOverrides(costs);
    EXPECT_EQ(costs.kernelTrap.count(), 555u);
}

TEST(OptionsTest, UnusedKeysReported)
{
    Options options;
    options.set("used", "1");
    options.set("unused", "1");
    options.getU64("used", 0);
    const auto unused = options.unusedKeys();
    ASSERT_EQ(unused.size(), 1u);
    EXPECT_EQ(unused[0], "unused");
}

TEST(TableTest, AlignsColumns)
{
    TextTable table({"a", "bbbb"});
    table.addRow({"xxxxxx", "y"});
    std::ostringstream os;
    table.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("| a      | bbbb |"), std::string::npos);
    EXPECT_NE(out.find("| xxxxxx | y    |"), std::string::npos);
}

TEST(TableTest, NumberGrouping)
{
    EXPECT_EQ(TextTable::num(u64{0}), "0");
    EXPECT_EQ(TextTable::num(u64{999}), "999");
    EXPECT_EQ(TextTable::num(u64{1000}), "1,000");
    EXPECT_EQ(TextTable::num(u64{12345}), "12,345");
    EXPECT_EQ(TextTable::num(u64{1234567}), "1,234,567");
}

TEST(TableTest, RatioFormat)
{
    EXPECT_EQ(TextTable::ratio(3.14), "3.1x");
    EXPECT_EQ(TextTable::ratio(10.0, 0), "10x");
}

TEST(CycleAccountTest, ChargesByCategory)
{
    CycleAccount account;
    account.charge(CostCategory::Trap, Cycles(100));
    account.charge(CostCategory::Trap, Cycles(50));
    account.charge(CostCategory::Io, Cycles(7));
    EXPECT_EQ(account.byCategory(CostCategory::Trap).count(), 150u);
    EXPECT_EQ(account.total().count(), 157u);
    EXPECT_EQ(account.totalExcludingIo().count(), 150u);
}

TEST(CycleAccountTest, SinceComputesDeltas)
{
    CycleAccount account;
    account.charge(CostCategory::Refill, Cycles(10));
    const CycleAccount snapshot = account;
    account.charge(CostCategory::Refill, Cycles(5));
    account.charge(CostCategory::Flush, Cycles(3));
    const CycleAccount delta = account.since(snapshot);
    EXPECT_EQ(delta.byCategory(CostCategory::Refill).count(), 5u);
    EXPECT_EQ(delta.byCategory(CostCategory::Flush).count(), 3u);
    EXPECT_EQ(delta.total().count(), 8u);
}

TEST(CycleAccountTest, ResetZeroes)
{
    CycleAccount account;
    account.charge(CostCategory::Io, Cycles(9));
    account.reset();
    EXPECT_EQ(account.total().count(), 0u);
}

TEST(CycleAccountTest, EveryCategoryHasAName)
{
    for (unsigned i = 0;
         i < static_cast<unsigned>(CostCategory::NumCategories); ++i) {
        EXPECT_STRNE(toString(static_cast<CostCategory>(i)), "?");
    }
}
