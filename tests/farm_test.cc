/**
 * @file
 * The sweep farm: campaign identity, the CellExecution slice /
 * checkpoint / resume algebra, the pipe wire protocol's corruption
 * defenses, and the coordinator's headline guarantee -- a farmed
 * campaign merges to results bit-identical to a serial SweepRunner
 * run, at any worker count, under chaos kills and under preempt-and-
 * migrate elasticity.
 *
 * The farm integration tests fork real worker processes; workers exit
 * through _exit and never touch gtest state. The checked-in
 * farm_frame_*.bin files double as the farm_fuzz seed corpus;
 * SASOS_GOLDEN_REGEN=1 regenerates them.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <sys/wait.h>
#include <unistd.h>
#include <vector>

#include "farm/campaign.hh"
#include "farm/coordinator.hh"
#include "farm/wire.hh"
#include "farm/worker.hh"
#include "sim/logging.hh"

using namespace sasos;

namespace
{

std::string
dataPath(const std::string &name)
{
    return std::string(SASOS_TEST_DATA_DIR) + "/" + name;
}

struct FatalRejection : std::runtime_error
{
    explicit FatalRejection(const std::string &message)
        : std::runtime_error(message)
    {
    }
};

class ScopedFatalThrow
{
  public:
    ScopedFatalThrow()
    {
        previous_ = setFatalHandler([](const std::string &message) -> void {
            throw FatalRejection(message);
        });
    }
    ~ScopedFatalThrow() { setFatalHandler(previous_); }

  private:
    FatalHandler previous_;
};

/** Small machine shape shared by every farm test cell: image sizes
 * stay tens of KB and cells run in milliseconds. */
core::SystemConfig
smallConfig(core::SystemConfig config)
{
    config.frames = 1024;
    config.cache.sizeBytes = 8 * 1024;
    config.l2Enabled = false;
    return config;
}

farm::StreamFactory
zipfFactory()
{
    return [](vm::VAddr base, u64 pages, u64 seed) {
        return std::make_unique<wl::ZipfPageStream>(base, pages, 0.8,
                                                    seed);
    };
}

farm::SweepCell
makeCell(u64 seed = 1, u64 refs = 4000)
{
    farm::SweepCell cell;
    cell.model = "plb";
    cell.workload = "zipf";
    cell.seed = seed;
    cell.config = smallConfig(core::SystemConfig::plbSystem());
    cell.pages = 64;
    cell.references = refs;
    cell.makeStream = zipfFactory();
    return cell;
}

/** Cells across all four protection models, clean and
 * fault-injected. */
std::vector<farm::SweepCell>
allModelCells(u64 refs)
{
    const std::vector<std::pair<std::string, core::SystemConfig>> models =
        {{"plb", core::SystemConfig::plbSystem()},
         {"page-group", core::SystemConfig::pageGroupSystem()},
         {"conventional", core::SystemConfig::conventionalSystem()},
         {"pkey", core::SystemConfig::pkeySystem()}};
    std::vector<farm::SweepCell> cells;
    for (const auto &[label, config] : models) {
        farm::SweepCell clean = makeCell(3, refs);
        clean.model = label;
        clean.config = smallConfig(config);
        cells.push_back(std::move(clean));

        farm::SweepCell injected = makeCell(7, refs);
        injected.model = label + "+faults";
        injected.config = smallConfig(config);
        injected.config.faults.enabled = true;
        injected.config.faults.seed = 7;
        injected.config.faults.rate = 0.02;
        cells.push_back(std::move(injected));
    }
    return cells;
}

void
expectIdentical(const std::vector<farm::CellResult> &serial,
                const farm::FarmResult &farmed)
{
    ASSERT_TRUE(farmed.ok) << farmed.error;
    ASSERT_EQ(farmed.results.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(farmed.results[i].id, serial[i].id);
        EXPECT_EQ(farmed.results[i].completed, serial[i].completed);
        EXPECT_EQ(farmed.results[i].failed, serial[i].failed);
        EXPECT_EQ(farmed.results[i].simCycles, serial[i].simCycles);
        EXPECT_EQ(farmed.results[i].statsDump, serial[i].statsDump)
            << "cell id " << serial[i].id << " (" << serial[i].model
            << ") diverged from the serial run";
    }
}

} // namespace

// ---------------------------------------------------------------------
// Campaign identity

TEST(CampaignTest, AutoIdsArePositional)
{
    std::vector<farm::SweepCell> cells = {makeCell(1), makeCell(2),
                                          makeCell(3)};
    const farm::Campaign campaign(cells);
    ASSERT_EQ(campaign.size(), 3u);
    for (u64 i = 0; i < 3; ++i) {
        EXPECT_EQ(campaign.cells()[i].id, i);
        EXPECT_EQ(campaign.indexOf(i), i);
        ASSERT_NE(campaign.byId(i), nullptr);
        EXPECT_EQ(campaign.byId(i)->seed, i + 1);
    }
}

TEST(CampaignTest, ExplicitIdsAreKept)
{
    std::vector<farm::SweepCell> cells = {makeCell(1), makeCell(2)};
    cells[0].id = 100;
    cells[1].id = 7;
    const farm::Campaign campaign(cells);
    EXPECT_EQ(campaign.indexOf(100), 0u);
    EXPECT_EQ(campaign.indexOf(7), 1u);
    EXPECT_EQ(campaign.byId(42), nullptr);
}

/** Regression: duplicate cell ids once slipped through silently and
 * would have made id-keyed retry/dedup ambiguous; construction must
 * reject them. */
TEST(CampaignTest, DuplicateIdsAreFatal)
{
    ScopedFatalThrow bridge;
    std::vector<farm::SweepCell> cells = {makeCell(1), makeCell(2)};
    cells[0].id = 5;
    cells[1].id = 5;
    EXPECT_THROW(farm::Campaign{cells}, FatalRejection);

    // An explicit id colliding with a resolved auto id is the sneaky
    // variant of the same bug.
    std::vector<farm::SweepCell> mixed = {makeCell(1), makeCell(2)};
    mixed[1].id = 0;
    EXPECT_THROW(farm::Campaign{mixed}, FatalRejection);
}

TEST(CampaignTest, UnknownIdLookupIsFatal)
{
    ScopedFatalThrow bridge;
    const farm::Campaign campaign(std::vector<farm::SweepCell>{makeCell()});
    EXPECT_THROW(campaign.indexOf(99), FatalRejection);
}

// ---------------------------------------------------------------------
// CellExecution: slicing and checkpoint/resume must not change the
// answer (the algebra the farm's elasticity is built on).

TEST(CellExecutionTest, SlicedStepsMatchStraightRun)
{
    const farm::SweepCell cell = makeCell(11, 5000);
    const farm::CellResult straight = farm::SweepRunner::runCell(cell, 1);

    farm::CellExecution exec(cell, 1);
    while (!exec.done())
        exec.step(700); // Deliberately not a divisor of 5000.
    const farm::CellResult sliced = exec.finish();

    EXPECT_EQ(sliced.statsDump, straight.statsDump);
    EXPECT_EQ(sliced.simCycles, straight.simCycles);
    EXPECT_EQ(sliced.completed, straight.completed);
    EXPECT_EQ(sliced.failed, straight.failed);
}

TEST(CellExecutionTest, CheckpointResumeMatchesStraightRun)
{
    const farm::SweepCell cell = makeCell(12, 5000);
    const farm::CellResult straight = farm::SweepRunner::runCell(cell, 1);

    farm::CellExecution first(cell, 1);
    first.step(2000);
    const snap::Snapshot image = first.checkpoint();

    farm::CellExecution second(cell, 1, farm::CellExecution::kForRestore);
    second.resume(image, first.refsDone(), first.completed(),
                  first.failed());
    second.step(5000);
    const farm::CellResult resumed = second.finish();

    EXPECT_EQ(resumed.statsDump, straight.statsDump);
    EXPECT_EQ(resumed.simCycles, straight.simCycles);
}

TEST(CellExecutionTest, RepeatedMigrationMatchesStraightRun)
{
    const farm::SweepCell cell = makeCell(13, 6000);
    const farm::CellResult straight = farm::SweepRunner::runCell(cell, 1);

    // Three hops, as if the cell migrated across three workers.
    auto hop = std::make_unique<farm::CellExecution>(cell, 1);
    hop->step(1500);
    for (int i = 0; i < 2; ++i) {
        const snap::Snapshot image = hop->checkpoint();
        auto next = std::make_unique<farm::CellExecution>(
            cell, 1, farm::CellExecution::kForRestore);
        next->resume(image, hop->refsDone(), hop->completed(),
                     hop->failed());
        next->step(1500);
        hop = std::move(next);
    }
    hop->step(cell.references);
    const farm::CellResult migrated = hop->finish();

    EXPECT_EQ(migrated.statsDump, straight.statsDump);
    EXPECT_EQ(migrated.simCycles, straight.simCycles);
}

// ---------------------------------------------------------------------
// Wire protocol: round trips

TEST(WireTest, EveryKindRoundTrips)
{
    farm::Message hello;
    hello.kind = farm::MsgKind::Hello;
    hello.worker = 3;
    farm::Message back = farm::decodeMessage(farm::encodeMessage(hello));
    EXPECT_EQ(back.kind, farm::MsgKind::Hello);
    EXPECT_EQ(back.worker, 3u);

    farm::Message assign;
    assign.kind = farm::MsgKind::Assign;
    assign.cell = 17;
    assign.checkpointEvery = 5000;
    assign.preemptFirst = true;
    back = farm::decodeMessage(farm::encodeMessage(assign));
    EXPECT_EQ(back.kind, farm::MsgKind::Assign);
    EXPECT_EQ(back.cell, 17u);
    EXPECT_EQ(back.checkpointEvery, 5000u);
    EXPECT_TRUE(back.preemptFirst);

    farm::Message resume;
    resume.kind = farm::MsgKind::Resume;
    resume.cell = 4;
    resume.checkpointEvery = 100;
    resume.refsDone = 2000;
    resume.completed = 1999;
    resume.failed = 1;
    resume.image = {1, 2, 3, 4, 5};
    back = farm::decodeMessage(farm::encodeMessage(resume));
    EXPECT_EQ(back.kind, farm::MsgKind::Resume);
    EXPECT_EQ(back.refsDone, 2000u);
    EXPECT_EQ(back.image, resume.image);

    farm::Message preempt;
    preempt.kind = farm::MsgKind::Preempt;
    preempt.cell = 9;
    back = farm::decodeMessage(farm::encodeMessage(preempt));
    EXPECT_EQ(back.kind, farm::MsgKind::Preempt);
    EXPECT_EQ(back.cell, 9u);

    farm::Message image;
    image.kind = farm::MsgKind::Image;
    image.cell = 2;
    image.refsDone = 1000;
    image.completed = 990;
    image.failed = 10;
    image.stopped = true;
    image.image = {9, 8, 7};
    back = farm::decodeMessage(farm::encodeMessage(image));
    EXPECT_EQ(back.kind, farm::MsgKind::Image);
    EXPECT_TRUE(back.stopped);
    EXPECT_EQ(back.image, image.image);

    farm::Message done;
    done.kind = farm::MsgKind::Done;
    done.cell = 6;
    done.result.model = "plb";
    done.result.workload = "zipf";
    done.result.seed = 3;
    done.result.references = 4000;
    done.result.completed = 3990;
    done.result.failed = 10;
    done.result.simCycles = 123456;
    done.result.statsDump = "stats\nlines\n";
    done.result.wallSeconds = 0.25;
    done.result.refsPerSec = 16000.0;
    back = farm::decodeMessage(farm::encodeMessage(done));
    EXPECT_EQ(back.kind, farm::MsgKind::Done);
    EXPECT_EQ(back.result.id, 6u);
    EXPECT_EQ(back.result.statsDump, done.result.statsDump);
    EXPECT_EQ(back.result.simCycles, 123456u);

    farm::Message shutdown;
    shutdown.kind = farm::MsgKind::Shutdown;
    back = farm::decodeMessage(farm::encodeMessage(shutdown));
    EXPECT_EQ(back.kind, farm::MsgKind::Shutdown);
}

// ---------------------------------------------------------------------
// Wire protocol: corruption attacks (mirroring snap_test's, because
// the frames reuse the same envelope and must reject the same way)

namespace
{

std::vector<u8>
sampleFrame()
{
    farm::Message done;
    done.kind = farm::MsgKind::Done;
    done.cell = 1;
    done.result.model = "plb";
    done.result.workload = "zipf";
    done.result.statsDump = "some stats text for padding\n";
    return farm::encodeMessage(done);
}

} // namespace

TEST(WireCorruptionTest, TruncationsAreRejected)
{
    ScopedFatalThrow bridge;
    const std::vector<u8> valid = sampleFrame();
    for (const std::size_t keep :
         {std::size_t{0}, std::size_t{7}, std::size_t{31}, std::size_t{32},
          valid.size() / 2, valid.size() - 1}) {
        std::vector<u8> cut = valid;
        cut.resize(keep);
        EXPECT_THROW(farm::decodeMessage(cut), FatalRejection)
            << "truncated to " << keep << " bytes";
    }
}

TEST(WireCorruptionTest, BitFlipsAreRejected)
{
    ScopedFatalThrow bridge;
    const std::vector<u8> valid = sampleFrame();
    std::vector<std::size_t> positions = {0, 9, 17, 25};
    for (std::size_t at = 32; at < valid.size();
         at += valid.size() / 13 + 1)
        positions.push_back(at);
    for (const std::size_t at : positions) {
        std::vector<u8> flipped = valid;
        flipped[at] ^= 0x10;
        EXPECT_THROW(farm::decodeMessage(flipped), FatalRejection)
            << "flip at byte " << at;
    }
}

TEST(WireCorruptionTest, FutureVersionIsRejected)
{
    ScopedFatalThrow bridge;
    std::vector<u8> frame = sampleFrame();
    frame[8] = 0xFF; // version field, little-endian low byte
    EXPECT_THROW(farm::decodeMessage(frame), FatalRejection);
}

TEST(WireCorruptionTest, HostileLengthIsRejected)
{
    ScopedFatalThrow bridge;
    std::vector<u8> frame = sampleFrame();
    for (int i = 0; i < 8; ++i)
        frame[16 + i] = 0xFF; // promises ~2^64 payload bytes
    EXPECT_THROW(farm::decodeMessage(frame), FatalRejection);
}

TEST(WireCorruptionTest, TrailingBytesAreRejected)
{
    ScopedFatalThrow bridge;
    // A frame whose payload continues past the message: built by
    // sealing a Done message plus stray extra bytes.
    farm::Message hello;
    hello.kind = farm::MsgKind::Hello;
    std::vector<u8> frame = farm::encodeMessage(hello);
    // Append a byte and fix nothing: checksum now fails.
    frame.push_back(0x00);
    EXPECT_THROW(farm::decodeMessage(frame), FatalRejection);
}

TEST(WireCorruptionTest, UnknownKindIsRejected)
{
    ScopedFatalThrow bridge;
    snap::SnapWriter w;
    w.putTag("farm.msg");
    w.put8(99); // Not a MsgKind.
    EXPECT_THROW(farm::decodeMessage(w.seal()), FatalRejection);
}

TEST(WireCorruptionTest, WrongTagIsRejected)
{
    ScopedFatalThrow bridge;
    snap::SnapWriter w;
    w.putTag("not.farm");
    w.put8(1);
    w.put64(0);
    EXPECT_THROW(farm::decodeMessage(w.seal()), FatalRejection);
}

TEST(WireCorruptionTest, OverLongWellFormedFrameIsRejected)
{
    ScopedFatalThrow bridge;
    // A frame that is envelope-valid but bigger than the farm's
    // ceiling must still be refused by decodeMessage's size check.
    std::vector<u8> frame(farm::kMaxFrameBytes + 1, 0);
    EXPECT_THROW(farm::decodeMessage(frame), FatalRejection);
}

// ---------------------------------------------------------------------
// FrameBuffer reassembly

TEST(FrameBufferTest, ReassemblesByteAtATime)
{
    const std::vector<u8> frame = sampleFrame();
    farm::FrameBuffer buffer;
    std::vector<u8> out;
    for (std::size_t i = 0; i < frame.size(); ++i) {
        EXPECT_EQ(buffer.next(out), 0)
            << "frame extracted before byte " << i << " arrived";
        buffer.feed(&frame[i], 1);
    }
    ASSERT_EQ(buffer.next(out), 1);
    EXPECT_EQ(out, frame);
    EXPECT_EQ(buffer.next(out), 0);
    EXPECT_EQ(buffer.pending(), 0u);
}

TEST(FrameBufferTest, ExtractsBackToBackFrames)
{
    const std::vector<u8> one = sampleFrame();
    farm::Message hello;
    hello.kind = farm::MsgKind::Hello;
    hello.worker = 5;
    const std::vector<u8> two = farm::encodeMessage(hello);

    std::vector<u8> joined = one;
    joined.insert(joined.end(), two.begin(), two.end());

    farm::FrameBuffer buffer;
    buffer.feed(joined.data(), joined.size());
    std::vector<u8> out;
    ASSERT_EQ(buffer.next(out), 1);
    EXPECT_EQ(out, one);
    ASSERT_EQ(buffer.next(out), 1);
    EXPECT_EQ(out, two);
    EXPECT_EQ(buffer.next(out), 0);
}

TEST(FrameBufferTest, PoisonsOnBadMagic)
{
    farm::FrameBuffer buffer;
    const std::vector<u8> garbage(64, 0xAB);
    buffer.feed(garbage.data(), garbage.size());
    std::vector<u8> out;
    EXPECT_EQ(buffer.next(out), -1);
    EXPECT_TRUE(buffer.poisoned());
    EXPECT_FALSE(buffer.error().empty());
    // Poison is permanent: feeding a valid frame cannot recover it.
    const std::vector<u8> valid = sampleFrame();
    buffer.feed(valid.data(), valid.size());
    EXPECT_EQ(buffer.next(out), -1);
}

TEST(FrameBufferTest, PoisonsOnHostileLengthHeader)
{
    std::vector<u8> frame = sampleFrame();
    for (int i = 0; i < 8; ++i)
        frame[16 + i] = 0xFF;
    farm::FrameBuffer buffer;
    buffer.feed(frame.data(), frame.size());
    std::vector<u8> out;
    EXPECT_EQ(buffer.next(out), -1);
    EXPECT_TRUE(buffer.poisoned());
}

// ---------------------------------------------------------------------
// Image hand-off preflight

TEST(PreflightTest, AcceptsValidAndNamesViolations)
{
    const farm::SweepCell cell = makeCell(21, 2000);
    farm::CellExecution exec(cell, 1);
    exec.step(1000);
    const std::vector<u8> valid = exec.checkpoint().bytes;
    EXPECT_TRUE(snap::preflightEnvelope(valid).empty());

    std::vector<u8> truncated = valid;
    truncated.resize(truncated.size() / 2);
    EXPECT_FALSE(snap::preflightEnvelope(truncated).empty());

    std::vector<u8> flipped = valid;
    flipped[valid.size() - 1] ^= 0x01;
    EXPECT_FALSE(snap::preflightEnvelope(flipped).empty());

    std::vector<u8> badMagic = valid;
    badMagic[0] ^= 0xFF;
    EXPECT_FALSE(snap::preflightEnvelope(badMagic).empty());

    std::vector<u8> badVersion = valid;
    badVersion[8] = 0xFF;
    EXPECT_FALSE(snap::preflightEnvelope(badVersion).empty());

    std::vector<u8> badLength = valid;
    for (int i = 0; i < 8; ++i)
        badLength[16 + i] = 0xFF;
    EXPECT_FALSE(snap::preflightEnvelope(badLength).empty());

    EXPECT_FALSE(snap::preflightEnvelope({}).empty());
}

// ---------------------------------------------------------------------
// The farm itself: every path must land on the serial answer.

TEST(FarmTest, EmptyCampaignIsOkAndForksNothing)
{
    const farm::Campaign campaign;
    farm::FarmOptions options;
    const farm::FarmResult farmed = farm::runFarm(campaign, options);
    EXPECT_TRUE(farmed.ok);
    EXPECT_TRUE(farmed.results.empty());
    EXPECT_EQ(farmed.stats.forks, 0u);
}

TEST(FarmTest, FarmedMatchesSerialAtEveryWidth)
{
    std::vector<farm::SweepCell> cells;
    for (u64 seed = 1; seed <= 6; ++seed)
        cells.push_back(makeCell(seed, 3000));
    const farm::Campaign campaign(std::move(cells));
    const std::vector<farm::CellResult> serial =
        farm::SweepRunner(1).run(campaign);

    for (unsigned workers : {1u, 2u, 3u, 5u}) {
        farm::FarmOptions options;
        options.workers = workers;
        const farm::FarmResult farmed = farm::runFarm(campaign, options);
        expectIdentical(serial, farmed);
        EXPECT_EQ(farmed.stats.forks, workers);
        EXPECT_EQ(farmed.stats.deaths, 0u);
    }
}

TEST(FarmTest, AllModelsCleanAndInjectedMatchSerial)
{
    const farm::Campaign campaign(allModelCells(3000));
    const std::vector<farm::CellResult> serial =
        farm::SweepRunner(1).run(campaign);
    farm::FarmOptions options;
    options.workers = 3;
    options.checkpointEvery = 1000;
    expectIdentical(serial, farm::runFarm(campaign, options));
}

TEST(FarmTest, MoreWorkersThanCells)
{
    const farm::Campaign campaign(
        std::vector<farm::SweepCell>{makeCell(1, 3000), makeCell(2, 3000)});
    const std::vector<farm::CellResult> serial =
        farm::SweepRunner(1).run(campaign);
    farm::FarmOptions options;
    options.workers = 6; // Four workers never see work.
    const farm::FarmResult farmed = farm::runFarm(campaign, options);
    expectIdentical(serial, farmed);
    EXPECT_EQ(farmed.stats.forks, 6u);
}

TEST(FarmChaosTest, EveryCellKilledOnceStillBitIdentical)
{
    std::vector<farm::SweepCell> cells;
    for (u64 seed = 1; seed <= 5; ++seed)
        cells.push_back(makeCell(seed, 4000));
    const farm::Campaign campaign(std::move(cells));
    const std::vector<farm::CellResult> serial =
        farm::SweepRunner(1).run(campaign);

    farm::FarmOptions options;
    options.workers = 3;
    options.checkpointEvery = 1000;
    options.killRate = 1.0; // Every cell's worker dies once.
    options.killSeed = 42;
    const farm::FarmResult farmed = farm::runFarm(campaign, options);
    expectIdentical(serial, farmed);
    EXPECT_EQ(farmed.stats.chaosKills, campaign.size());
    EXPECT_GE(farmed.stats.retries, campaign.size());
    EXPECT_GT(farmed.stats.forks, 3u) << "deaths must respawn workers";
}

TEST(FarmChaosTest, KillsWithoutCheckpointsRestartFromScratch)
{
    std::vector<farm::SweepCell> cells;
    for (u64 seed = 1; seed <= 3; ++seed)
        cells.push_back(makeCell(seed, 3000));
    const farm::Campaign campaign(std::move(cells));
    const std::vector<farm::CellResult> serial =
        farm::SweepRunner(1).run(campaign);

    farm::FarmOptions options;
    options.workers = 2;
    options.checkpointEvery = 0; // No images: recovery = restart.
    options.killRate = 1.0;
    options.killSeed = 9;
    const farm::FarmResult farmed = farm::runFarm(campaign, options);
    expectIdentical(serial, farmed);
    EXPECT_EQ(farmed.stats.chaosKills, campaign.size());
    EXPECT_EQ(farmed.stats.resumes, 0u);
}

TEST(FarmMigrateTest, PreemptMigrateResumeRoundTrip)
{
    std::vector<farm::SweepCell> cells;
    for (u64 seed = 1; seed <= 4; ++seed)
        cells.push_back(makeCell(seed, 4000));
    const farm::Campaign campaign(std::move(cells));
    const std::vector<farm::CellResult> serial =
        farm::SweepRunner(1).run(campaign);

    farm::FarmOptions options;
    options.workers = 3;
    options.checkpointEvery = 1000;
    options.migrateRate = 1.0; // Preempt every cell at first image.
    options.killSeed = 5;
    const farm::FarmResult farmed = farm::runFarm(campaign, options);
    expectIdentical(serial, farmed);
    EXPECT_EQ(farmed.stats.preempts, campaign.size());
    EXPECT_EQ(farmed.stats.migrations, campaign.size());
    EXPECT_EQ(farmed.stats.resumes, campaign.size());
    EXPECT_EQ(farmed.stats.deaths, 0u)
        << "migration is the graceful path; nothing should die";
}

TEST(FarmTest, ChaosAndMigrationTogether)
{
    std::vector<farm::SweepCell> cells;
    for (u64 seed = 1; seed <= 6; ++seed)
        cells.push_back(makeCell(seed, 3000));
    const farm::Campaign campaign(std::move(cells));
    const std::vector<farm::CellResult> serial =
        farm::SweepRunner(1).run(campaign);

    farm::FarmOptions options;
    options.workers = 4;
    options.checkpointEvery = 800;
    options.killRate = 0.5;
    options.migrateRate = 0.5;
    options.killSeed = 1234;
    expectIdentical(serial, farm::runFarm(campaign, options));
}

TEST(FarmTest, WarmStartCellsFarmIdentically)
{
    farm::SweepCell seedCell = makeCell(31, 3000);
    seedCell.warmRefs = 2000;
    seedCell.warmSeed = 99;
    const std::shared_ptr<const snap::Snapshot> image =
        farm::SweepRunner::buildWarmImage(seedCell);

    std::vector<farm::SweepCell> cells;
    for (u64 seed = 31; seed <= 34; ++seed) {
        farm::SweepCell cell = seedCell;
        cell.seed = seed;
        cell.warmImage = image;
        cells.push_back(std::move(cell));
    }
    const farm::Campaign campaign(std::move(cells));
    const std::vector<farm::CellResult> serial =
        farm::SweepRunner(1).run(campaign);

    farm::FarmOptions options;
    options.workers = 2;
    options.checkpointEvery = 1000;
    options.killRate = 1.0;
    options.killSeed = 3;
    expectIdentical(serial, farm::runFarm(campaign, options));
}

// ---------------------------------------------------------------------
// The checked-in wire-frame corpus: golden decode check and the
// farm_fuzz seed corpus in one. SASOS_GOLDEN_REGEN=1 regenerates.

TEST(FarmGoldenTest, FrameCorpusDecodes)
{
    struct Sample
    {
        const char *name;
        farm::MsgKind kind;
    };
    const std::vector<Sample> samples = {
        {"farm_frame_hello.bin", farm::MsgKind::Hello},
        {"farm_frame_assign.bin", farm::MsgKind::Assign},
        {"farm_frame_resume.bin", farm::MsgKind::Resume},
        {"farm_frame_preempt.bin", farm::MsgKind::Preempt},
        {"farm_frame_image.bin", farm::MsgKind::Image},
        {"farm_frame_done.bin", farm::MsgKind::Done},
        {"farm_frame_shutdown.bin", farm::MsgKind::Shutdown},
    };

    if (std::getenv("SASOS_GOLDEN_REGEN") != nullptr) {
        // Real frames, captured from a live execution: the Resume and
        // Image samples carry a genuine checkpoint image so fuzz
        // mutations explore the nested-envelope path.
        const farm::SweepCell cell = makeCell(1, 2000);
        farm::CellExecution exec(cell, 1);
        exec.step(1000);
        const std::vector<u8> snap = exec.checkpoint().bytes;

        auto write = [&](const char *name, const farm::Message &msg) {
            const std::vector<u8> frame = farm::encodeMessage(msg);
            std::ofstream os(dataPath(name), std::ios::binary);
            os.write(reinterpret_cast<const char *>(frame.data()),
                     static_cast<std::streamsize>(frame.size()));
        };

        farm::Message hello;
        hello.kind = farm::MsgKind::Hello;
        hello.worker = 0;
        write("farm_frame_hello.bin", hello);

        farm::Message assign;
        assign.kind = farm::MsgKind::Assign;
        assign.cell = 0;
        assign.checkpointEvery = 1000;
        write("farm_frame_assign.bin", assign);

        farm::Message resume;
        resume.kind = farm::MsgKind::Resume;
        resume.cell = 0;
        resume.checkpointEvery = 1000;
        resume.refsDone = exec.refsDone();
        resume.completed = exec.completed();
        resume.failed = exec.failed();
        resume.image = snap;
        write("farm_frame_resume.bin", resume);

        farm::Message preempt;
        preempt.kind = farm::MsgKind::Preempt;
        preempt.cell = 0;
        write("farm_frame_preempt.bin", preempt);

        farm::Message image;
        image.kind = farm::MsgKind::Image;
        image.cell = 0;
        image.refsDone = exec.refsDone();
        image.completed = exec.completed();
        image.failed = exec.failed();
        image.image = snap;
        write("farm_frame_image.bin", image);

        farm::Message done;
        done.kind = farm::MsgKind::Done;
        done.cell = 0;
        farm::CellExecution rest(cell, 1);
        rest.step(cell.references);
        done.result = rest.finish();
        write("farm_frame_done.bin", done);

        farm::Message shutdown;
        shutdown.kind = farm::MsgKind::Shutdown;
        write("farm_frame_shutdown.bin", shutdown);

        GTEST_SKIP() << "regenerated the farm frame corpus";
    }

    for (const Sample &sample : samples) {
        const std::string path = dataPath(sample.name);
        ASSERT_TRUE(std::filesystem::exists(path))
            << "missing " << path
            << "; run with SASOS_GOLDEN_REGEN=1 to create it";
        std::ifstream is(path, std::ios::binary);
        std::vector<u8> frame(
            (std::istreambuf_iterator<char>(is)),
            std::istreambuf_iterator<char>());
        const farm::Message message = farm::decodeMessage(frame);
        EXPECT_EQ(message.kind, sample.kind) << sample.name;
    }
}

// ---------------------------------------------------------------------
// Direct worker-protocol round trip: drive workerMain over real pipes
// from the test, covering the wire Preempt path (the out-of-band
// analog of SIGTERM) and the stale-preempt guard the coordinator's
// deterministic preemptFirst path no longer exercises.

namespace
{

/** gcov's flush hook; present only in --coverage builds. The forked
 * worker exits via _exit and would otherwise drop its counters. */
extern "C" void __gcov_dump(void) __attribute__((weak));

struct WorkerHarness
{
    pid_t pid = -1;
    int rfd = -1; ///< worker -> test frames
    int wfd = -1; ///< test -> worker frames

    explicit WorkerHarness(const farm::Campaign &campaign)
    {
        int toWorker[2];
        int fromWorker[2];
        if (::pipe(toWorker) != 0 || ::pipe(fromWorker) != 0)
            return;
        pid = ::fork();
        if (pid == 0) {
            ::close(toWorker[1]);
            ::close(fromWorker[0]);
            const int status =
                farm::workerMain(campaign, toWorker[0], fromWorker[1], 0);
            if (__gcov_dump)
                __gcov_dump();
            ::_exit(status);
        }
        ::close(toWorker[0]);
        ::close(fromWorker[1]);
        rfd = fromWorker[0];
        wfd = toWorker[1];
    }

    ~WorkerHarness()
    {
        if (wfd >= 0)
            ::close(wfd);
        if (rfd >= 0)
            ::close(rfd);
        if (pid > 0)
            ::waitpid(pid, nullptr, 0);
    }

    bool
    send(const farm::Message &message)
    {
        return farm::writeFrame(wfd, farm::encodeMessage(message));
    }

    /** Read and decode the next frame (blocking). */
    bool
    recv(farm::Message &message)
    {
        std::vector<u8> frame;
        std::string err;
        if (farm::readFrame(rfd, frame, err) != farm::ReadStatus::Frame)
            return false;
        message = farm::decodeMessage(frame);
        return true;
    }
};

} // namespace

TEST(WorkerProtocolTest, PreemptResumeStalePreemptAndShutdown)
{
    const farm::Campaign campaign(
        std::vector<farm::SweepCell>{makeCell(1, 4000), makeCell(2, 3000)});
    const std::vector<farm::CellResult> serial =
        farm::SweepRunner(1).run(campaign);

    WorkerHarness worker(campaign);
    ASSERT_GT(worker.pid, 0);

    farm::Message message;
    ASSERT_TRUE(worker.recv(message));
    EXPECT_EQ(message.kind, farm::MsgKind::Hello);

    // Assign cell 0 with a checkpoint cadence, then preempt it over
    // the wire mid-cell.
    farm::Message assign;
    assign.kind = farm::MsgKind::Assign;
    assign.cell = 0;
    assign.checkpointEvery = 500;
    ASSERT_TRUE(worker.send(assign));

    ASSERT_TRUE(worker.recv(message));
    ASSERT_EQ(message.kind, farm::MsgKind::Image);
    EXPECT_FALSE(message.stopped);
    EXPECT_EQ(message.refsDone, 500u);

    farm::Message preempt;
    preempt.kind = farm::MsgKind::Preempt;
    preempt.cell = 0;
    ASSERT_TRUE(worker.send(preempt));

    // The worker drains control at slice boundaries, so a few more
    // unstopped images may cross the preempt on the wire; the next
    // boundary after it lands ships the image flagged stopped.
    farm::Message stopped;
    do {
        ASSERT_TRUE(worker.recv(stopped));
        ASSERT_EQ(stopped.kind, farm::MsgKind::Image);
    } while (!stopped.stopped);
    EXPECT_LT(stopped.refsDone, campaign.cells()[0].references);

    // Resume the preempted cell from its stopped image on the same
    // worker; the finished result must match the serial run.
    farm::Message resume;
    resume.kind = farm::MsgKind::Resume;
    resume.cell = 0;
    resume.checkpointEvery = 0; // No more images: straight to Done.
    resume.refsDone = stopped.refsDone;
    resume.completed = stopped.completed;
    resume.failed = stopped.failed;
    resume.image = stopped.image;
    ASSERT_TRUE(worker.send(resume));

    ASSERT_TRUE(worker.recv(message));
    ASSERT_EQ(message.kind, farm::MsgKind::Done);
    EXPECT_EQ(message.result.statsDump, serial[0].statsDump);
    EXPECT_EQ(message.result.simCycles, serial[0].simCycles);

    // A stale preempt naming the finished cell must not disturb the
    // next assignment.
    ASSERT_TRUE(worker.send(preempt));
    farm::Message assignNext;
    assignNext.kind = farm::MsgKind::Assign;
    assignNext.cell = 1;
    assignNext.checkpointEvery = 0;
    ASSERT_TRUE(worker.send(assignNext));

    ASSERT_TRUE(worker.recv(message));
    ASSERT_EQ(message.kind, farm::MsgKind::Done);
    EXPECT_EQ(message.result.id, 1u);
    EXPECT_EQ(message.result.statsDump, serial[1].statsDump);

    farm::Message shutdown;
    shutdown.kind = farm::MsgKind::Shutdown;
    ASSERT_TRUE(worker.send(shutdown));

    int status = 0;
    ASSERT_EQ(::waitpid(worker.pid, &status, 0), worker.pid);
    worker.pid = -1;
    EXPECT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0);
}

TEST(WorkerProtocolTest, PreemptFirstOrderStopsAtFirstCheckpoint)
{
    const farm::Campaign campaign(
        std::vector<farm::SweepCell>{makeCell(1, 4000)});
    WorkerHarness worker(campaign);
    ASSERT_GT(worker.pid, 0);

    farm::Message message;
    ASSERT_TRUE(worker.recv(message));
    EXPECT_EQ(message.kind, farm::MsgKind::Hello);

    farm::Message assign;
    assign.kind = farm::MsgKind::Assign;
    assign.cell = 0;
    assign.checkpointEvery = 1000;
    assign.preemptFirst = true;
    ASSERT_TRUE(worker.send(assign));

    // Deterministic: exactly one image, flagged stopped, at the
    // first slice boundary.
    ASSERT_TRUE(worker.recv(message));
    ASSERT_EQ(message.kind, farm::MsgKind::Image);
    EXPECT_TRUE(message.stopped);
    EXPECT_EQ(message.refsDone, 1000u);

    // EOF (closing our ends) is a clean shutdown for the worker.
}
