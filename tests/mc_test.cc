/**
 * @file
 * Determinism and equivalence tests for the multi-core engine.
 *
 * The engine's contract is that one (workload seed, schedule seed,
 * cores) triple is a pure function: bit-identical statistics, cycle
 * accounting and trace whatever the host, the host thread count, or
 * how often it is rerun. The strongest anchor is the single-core
 * case, which must match a plain System replaying the identical step
 * script cycle for cycle and event for event.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/mc/explorer.hh"
#include "core/mc/mc_system.hh"
#include "core/system.hh"
#include "obs/tracer.hh"

using namespace sasos;
namespace mc = sasos::core::mc;

namespace
{

mc::McConfig
smallConfig(core::ModelKind kind, unsigned cores)
{
    mc::McConfig config;
    config.system = core::SystemConfig::forModel(kind);
    config.cores = cores;
    config.workload.stepsPerCore = 400;
    config.workload.churnProb = 0.1;
    config.workload.seed = 7;
    return config;
}

std::string
statsJson(mc::McSystem &system)
{
    std::ostringstream os;
    system.dumpStatsJson(os);
    return os.str();
}

/** The fields a deterministic engine must reproduce exactly. */
void
expectSameSummary(const mc::RunSummary &a, const mc::RunSummary &b)
{
    EXPECT_EQ(a.scheduleSeed, b.scheduleSeed);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.failed, b.failed);
    EXPECT_EQ(a.shootdowns, b.shootdowns);
    EXPECT_EQ(a.staleWindowRefs, b.staleWindowRefs);
    EXPECT_EQ(a.staleGrants, b.staleGrants);
    EXPECT_EQ(a.invariantViolations, b.invariantViolations);
    EXPECT_EQ(a.hwViolations, b.hwViolations);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.quiescentOutcomes, b.quiescentOutcomes);
    EXPECT_EQ(a.coreOutcomes, b.coreOutcomes);
}

} // namespace

/** cores=1 is the sequential anchor: the same step script issued
 * through a plain System must produce identical counts, an identical
 * per-category cycle account, and an identical event trace. */
TEST(McTest, SingleCoreMatchesSystemBitExactly)
{
    for (core::ModelKind kind :
         {core::ModelKind::Plb, core::ModelKind::PageGroup,
          core::ModelKind::Conventional, core::ModelKind::Pkey}) {
        mc::McConfig config = smallConfig(kind, 1);
        config.tidBase = 0; // both traces run as logical thread 0

        obs::startTracing();
        mc::McSystem engine(config);
        const mc::McResult result = engine.run();
        const std::vector<obs::Event> mc_events = obs::stopTracing();

        obs::startTracing();
        core::System sys(config.system);
        auto &kernel = sys.kernel();
        const os::DomainId domain = kernel.createDomain("core0");
        const vm::SegmentId shared = kernel.createSegment(
            "shared", config.workload.sharedPages);
        kernel.attach(domain, shared, vm::Access::ReadWrite);
        mc::McLayout layout;
        layout.sharedSeg = shared;
        layout.sharedBase = sys.state().segments.find(shared)->base();
        layout.sharedPages = config.workload.sharedPages;
        const vm::SegmentId priv = kernel.createSegment(
            "private0", config.workload.privatePages);
        kernel.attach(domain, priv, vm::Access::ReadWrite);
        layout.privateSeg = priv;
        layout.privateBase = sys.state().segments.find(priv)->base();
        layout.privatePages = config.workload.privatePages;

        // Same layout, domain and seed => the identical step script.
        ASSERT_EQ(domain, engine.domainOf(0));
        ASSERT_EQ(layout.sharedBase.raw(),
                  engine.layoutOf(0).sharedBase.raw());
        ASSERT_EQ(layout.privateBase.raw(),
                  engine.layoutOf(0).privateBase.raw());

        u64 completed = 0;
        u64 failed = 0;
        mc::CoreScript script(config.workload, 0, domain, layout);
        while (!script.done()) {
            const mc::Step step = script.next();
            if (step.kind == mc::StepKind::Ref) {
                if (sys.access(step.va, step.type))
                    ++completed;
                else
                    ++failed;
            } else {
                mc::applyKernelStep(kernel, domain, step);
            }
        }
        const std::vector<obs::Event> seq_events = obs::stopTracing();

        EXPECT_EQ(result.completed, completed) << core::toString(kind);
        EXPECT_EQ(result.failed, failed) << core::toString(kind);
        EXPECT_EQ(engine.references.value(), sys.references.value());
        EXPECT_EQ(engine.failedReferences.value(),
                  sys.failedReferences.value());
        EXPECT_EQ(result.cycles, sys.cycles().count())
            << core::toString(kind);
        EXPECT_EQ(result.shootdowns, 0u);
        EXPECT_EQ(result.invariantViolations, 0u);
        EXPECT_EQ(result.hwViolations, 0u);

        std::ostringstream mc_account;
        std::ostringstream seq_account;
        engine.account().dump(mc_account);
        sys.account().dump(seq_account);
        EXPECT_EQ(mc_account.str(), seq_account.str())
            << core::toString(kind);

        ASSERT_EQ(mc_events.size(), seq_events.size())
            << core::toString(kind);
        for (std::size_t i = 0; i < mc_events.size(); ++i) {
            EXPECT_EQ(mc_events[i].kind, seq_events[i].kind) << "at " << i;
            EXPECT_EQ(mc_events[i].cycle, seq_events[i].cycle)
                << "at " << i;
            EXPECT_EQ(mc_events[i].addr, seq_events[i].addr) << "at " << i;
            EXPECT_EQ(mc_events[i].arg, seq_events[i].arg) << "at " << i;
        }
    }
}

/** The same configuration rerun must reproduce the entire stats tree
 * (scalars, histograms, per-core groups, cycle account) exactly. */
TEST(McTest, SameSeedReproducesStatsExactly)
{
    for (core::ModelKind kind :
         {core::ModelKind::Plb, core::ModelKind::PageGroup,
          core::ModelKind::Conventional, core::ModelKind::Pkey}) {
        mc::McSystem first(smallConfig(kind, 4));
        first.run();
        mc::McSystem second(smallConfig(kind, 4));
        second.run();
        EXPECT_EQ(statsJson(first), statsJson(second))
            << core::toString(kind);
    }
}

/** Different schedule seeds must actually explore different
 * interleavings (otherwise the explorer explores nothing). */
TEST(McTest, ScheduleSeedChangesInterleaving)
{
    mc::McConfig config = smallConfig(core::ModelKind::Plb, 4);
    mc::McSystem a(config);
    const mc::McResult ra = a.run();
    config.scheduleSeed = 2;
    mc::McSystem b(config);
    const mc::McResult rb = b.run();
    // Totals per core are schedule-independent (each script runs to
    // completion) but the interleaving-sensitive tallies move.
    EXPECT_EQ(ra.completed + ra.failed, rb.completed + rb.failed);
    EXPECT_NE(ra.cycles, rb.cycles);
}

/** A shootdown-heavy run must complete every barrier, ack every IPI
 * on every remote core, and hold both safety invariants. */
TEST(McTest, ShootdownsCompleteAndInvariantsHold)
{
    for (core::ModelKind kind :
         {core::ModelKind::Plb, core::ModelKind::PageGroup,
          core::ModelKind::Conventional, core::ModelKind::Pkey}) {
        mc::McSystem engine(smallConfig(kind, 4));
        const mc::McResult result = engine.run();
        EXPECT_GT(result.shootdowns, 0u) << core::toString(kind);
        EXPECT_EQ(result.acks, result.shootdowns * 3) << core::toString(kind);
        EXPECT_EQ(result.invariantViolations, 0u)
            << core::toString(kind) << ": " << result.firstViolation;
        EXPECT_EQ(result.hwViolations, 0u)
            << core::toString(kind) << ": " << result.firstViolation;
        EXPECT_GT(result.quiescentChecks, 0u);
    }
}

/** Quantum boundaries only chunk turns; every script still runs to
 * completion with clean invariants at the extremes (quantum=1 breaks
 * a turn at every step, a huge quantum never breaks one). */
TEST(McTest, QuantumEdgeCasesRunClean)
{
    const mc::McResult base =
        mc::McSystem(smallConfig(core::ModelKind::Plb, 4)).run();
    for (u64 quantum : {u64{1}, u64{3}, u64{100000}}) {
        mc::McConfig config = smallConfig(core::ModelKind::Plb, 4);
        config.quantum = quantum;
        mc::McSystem engine(config);
        const mc::McResult result = engine.run();
        EXPECT_EQ(result.completed + result.failed,
                  base.completed + base.failed)
            << "quantum " << quantum;
        EXPECT_EQ(result.invariantViolations, 0u)
            << "quantum " << quantum << ": " << result.firstViolation;
        EXPECT_EQ(result.hwViolations, 0u)
            << "quantum " << quantum << ": " << result.firstViolation;
    }
}

/** With one core the quantum is invisible: turns chunk the same
 * sequential stream, so every statistic is identical. */
TEST(McTest, SingleCoreQuantumInvariance)
{
    mc::McConfig config = smallConfig(core::ModelKind::PageGroup, 1);
    config.quantum = 1;
    mc::McSystem a(config);
    const mc::McResult ra = a.run();
    config.quantum = 64;
    mc::McSystem b(config);
    const mc::McResult rb = b.run();
    EXPECT_EQ(ra.completed, rb.completed);
    EXPECT_EQ(ra.failed, rb.failed);
    EXPECT_EQ(ra.cycles, rb.cycles);
    EXPECT_EQ(ra.quiescentOutcomes, rb.quiescentOutcomes);
}

/** The protection-key shootdown path: a key-permission update rides
 * the same deferred-ack IPI protocol, and the ack-time register-file
 * scrub guarantees a revoked key never grants a reference outside the
 * stale window (hwViolations counts exactly such grants). */
TEST(McTest, PkeyRevokedKeyNeverGrantsOutsideWindow)
{
    mc::McSystem engine(smallConfig(core::ModelKind::Pkey, 4));
    const mc::McResult result = engine.run();
    EXPECT_GT(result.shootdowns, 0u);
    EXPECT_EQ(result.acks, result.shootdowns * 3);
    EXPECT_EQ(result.invariantViolations, 0u) << result.firstViolation;
    EXPECT_EQ(result.hwViolations, 0u) << result.firstViolation;
    EXPECT_GT(result.quiescentChecks, 0u);

    // With instant acks the window is empty by construction: no
    // reference can ever be served off a not-yet-scrubbed register.
    mc::McConfig instant = smallConfig(core::ModelKind::Pkey, 4);
    instant.ipiDelaySteps = 0;
    mc::McSystem closed(instant);
    const mc::McResult closed_result = closed.run();
    EXPECT_GT(closed_result.shootdowns, 0u);
    EXPECT_EQ(closed_result.staleWindowRefs, 0u);
    EXPECT_EQ(closed_result.staleGrants, 0u);
    EXPECT_EQ(closed_result.invariantViolations, 0u)
        << closed_result.firstViolation;
}

/** An IPI delay of zero means a remote acks before it can issue
 * another reference: the stale window is empty by construction. */
TEST(McTest, ZeroIpiDelayClosesStaleWindow)
{
    mc::McConfig config = smallConfig(core::ModelKind::Plb, 4);
    config.ipiDelaySteps = 0;
    mc::McSystem engine(config);
    const mc::McResult result = engine.run();
    EXPECT_GT(result.shootdowns, 0u);
    EXPECT_EQ(result.staleWindowRefs, 0u);
    EXPECT_EQ(result.staleGrants, 0u);
    EXPECT_EQ(result.invariantViolations, 0u) << result.firstViolation;
}

/** The explorer's slot-indexed fan-out is host-thread-invariant:
 * every per-seed summary is identical at threads=1 and threads=4. */
TEST(McTest, ExplorerHostThreadCountInvariance)
{
    mc::ExplorerConfig explorer;
    explorer.base = smallConfig(core::ModelKind::Conventional, 4);
    explorer.base.recordOutcomes = true;
    explorer.seeds = 6;

    explorer.threads = 1;
    const mc::ExplorerResult serial = mc::explore(explorer);
    explorer.threads = 4;
    const mc::ExplorerResult parallel = mc::explore(explorer);

    ASSERT_EQ(serial.runs.size(), parallel.runs.size());
    for (std::size_t i = 0; i < serial.runs.size(); ++i)
        expectSameSummary(serial.runs[i], parallel.runs[i]);
    EXPECT_EQ(serial.totalShootdowns, parallel.totalShootdowns);
    EXPECT_TRUE(serial.passed()) << serial.firstViolation;
}

/** The TSan target: concurrent explorer cells (each a full McSystem
 * with its own hardware and kernel over churn-heavy schedules) must
 * share no mutable state. Run with SASOS_SANITIZE=thread in CI. */
TEST(McTest, ExplorerStressParallelCells)
{
    mc::ExplorerConfig explorer;
    explorer.base = smallConfig(core::ModelKind::Plb, 4);
    explorer.base.workload.churnProb = 0.15;
    explorer.seeds = 8;
    explorer.threads = 4;
    const mc::ExplorerResult result = mc::explore(explorer);
    EXPECT_TRUE(result.passed()) << result.firstViolation;
    EXPECT_GT(result.totalShootdowns, 0u);
}
