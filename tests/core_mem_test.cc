/**
 * @file
 * Tests for the shared memory path (L1 + L2) and the
 * multiple-address-space virtually-indexed-cache baseline
 * (flush-on-switch, Section 2.2).
 */

#include <gtest/gtest.h>

#include "core/system.hh"

using namespace sasos;
using namespace sasos::core;

namespace
{

SystemConfig
tinyCaches(ModelKind kind)
{
    SystemConfig config = SystemConfig::forModel(kind);
    config.cache.sizeBytes = 4 * 1024;
    config.cache.ways = 1;
    config.l2.sizeBytes = 64 * 1024;
    return config;
}

} // namespace

class MemPathTest : public ::testing::TestWithParam<ModelKind>
{
  protected:
    hw::DataCache *
    l2Of(core::System &sys)
    {
        if (auto *plb = sys.plbSystem())
            return plb->memory().l2();
        if (auto *pg = sys.pageGroupSystem())
            return pg->memory().l2();
        return sys.conventionalSystem()->memory().l2();
    }
};

TEST_P(MemPathTest, L2CatchesL1ConflictMisses)
{
    core::System sys(tinyCaches(GetParam()));
    auto &kernel = sys.kernel();
    const os::DomainId d = kernel.createDomain("d");
    const vm::SegmentId seg = kernel.createSegment("s", 4);
    kernel.attach(d, seg, vm::Access::ReadWrite);
    const vm::VAddr base = sys.state().segments.find(seg)->base();

    // a and b conflict in the 4KB direct-mapped L1 but coexist in L2.
    const vm::VAddr a = base, b = base + 4096;
    sys.load(a);
    sys.load(b); // evicts a from L1; L2 now holds both
    hw::DataCache *l2 = l2Of(sys);
    ASSERT_NE(l2, nullptr);
    const u64 l2_hits_before = l2->hits.value();
    sys.load(a); // L1 miss, L2 hit
    EXPECT_EQ(l2->hits.value(), l2_hits_before + 1);
}

TEST_P(MemPathTest, L2HitCheaperThanMemory)
{
    core::System sys(tinyCaches(GetParam()));
    auto &kernel = sys.kernel();
    const os::DomainId d = kernel.createDomain("d");
    const vm::SegmentId seg = kernel.createSegment("s", 4);
    kernel.attach(d, seg, vm::Access::ReadWrite);
    const vm::VAddr base = sys.state().segments.find(seg)->base();
    const vm::VAddr a = base, b = base + 4096;
    sys.load(a);
    sys.load(b);

    // L1 miss + L2 hit:
    u64 mark = sys.cycles().count();
    sys.load(a);
    const u64 l2_hit_cost = sys.cycles().count() - mark;

    // L1 hit:
    mark = sys.cycles().count();
    sys.load(a);
    const u64 l1_hit_cost = sys.cycles().count() - mark;

    EXPECT_GT(l2_hit_cost, l1_hit_cost);
    EXPECT_LT(l2_hit_cost,
              sys.costs().memory.count()); // cheaper than memory
}

TEST_P(MemPathTest, DisablingL2MakesMissesCostMemory)
{
    SystemConfig config = tinyCaches(GetParam());
    config.l2Enabled = false;
    core::System sys(config);
    auto &kernel = sys.kernel();
    const os::DomainId d = kernel.createDomain("d");
    const vm::SegmentId seg = kernel.createSegment("s", 2);
    kernel.attach(d, seg, vm::Access::ReadWrite);
    const vm::VAddr base = sys.state().segments.find(seg)->base();
    sys.load(base); // map + fill
    const u64 mark = sys.cycles().count();
    sys.load(base + 64); // same page, new line -> memory
    EXPECT_GE(sys.cycles().count() - mark, sys.costs().memory.count());
}

TEST_P(MemPathTest, UnmapFlushesBothLevels)
{
    core::System sys(tinyCaches(GetParam()));
    auto &kernel = sys.kernel();
    const os::DomainId d = kernel.createDomain("d");
    const vm::SegmentId seg = kernel.createSegment("s", 2);
    kernel.attach(d, seg, vm::Access::ReadWrite);
    const vm::VAddr base = sys.state().segments.find(seg)->base();
    sys.store(base);
    hw::DataCache *l2 = l2Of(sys);
    ASSERT_GT(l2->occupancy(), 0u);
    kernel.unmapPage(vm::pageOf(base));
    EXPECT_EQ(l2->occupancy(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Models, MemPathTest,
                         ::testing::Values(ModelKind::Plb,
                                           ModelKind::PageGroup,
                                           ModelKind::Conventional),
                         [](const ::testing::TestParamInfo<ModelKind> &i) {
                             switch (i.param) {
                               case ModelKind::Plb:
                                 return "plb";
                               case ModelKind::PageGroup:
                                 return "pg";
                               default:
                                 return "conv";
                             }
                         });

// ---------------------------------------------------------------------
// Multiple-address-space VIVT baseline (flush on switch)

TEST(FlushingVcacheTest, PresetFlushesAndPurges)
{
    const SystemConfig config = SystemConfig::flushingVcacheSystem();
    EXPECT_EQ(config.model, ModelKind::Conventional);
    EXPECT_EQ(config.cache.org, hw::CacheOrg::Vivt);
    EXPECT_TRUE(config.flushCacheOnSwitch);
    EXPECT_TRUE(config.purgeTlbOnSwitch);
}

TEST(FlushingVcacheTest, SwitchEmptiesTheCache)
{
    core::System sys(SystemConfig::flushingVcacheSystem());
    auto &kernel = sys.kernel();
    const os::DomainId a = kernel.createDomain("a");
    const os::DomainId b = kernel.createDomain("b");
    const vm::SegmentId seg = kernel.createSegment("s", 4);
    kernel.attach(a, seg, vm::Access::ReadWrite);
    kernel.attach(b, seg, vm::Access::ReadWrite);
    const vm::VAddr base = sys.state().segments.find(seg)->base();
    kernel.switchTo(a);
    sys.touchRange(base, 4 * vm::kPageBytes);
    auto &cache = sys.conventionalSystem()->cache();
    EXPECT_GT(cache.occupancy(), 0u);
    kernel.switchTo(b);
    EXPECT_EQ(cache.occupancy(), 0u);
    EXPECT_EQ(sys.conventionalSystem()->switchCacheFlushes.value(), 1u);
    EXPECT_GT(sys.account().byCategory(CostCategory::Flush).count(), 0u);
}

TEST(FlushingVcacheTest, SasosVivtKeepsCacheAcrossSwitches)
{
    // The contrast: the PLB system's VIVT cache survives switches.
    core::System sys(SystemConfig::plbSystem());
    auto &kernel = sys.kernel();
    const os::DomainId a = kernel.createDomain("a");
    const os::DomainId b = kernel.createDomain("b");
    const vm::SegmentId seg = kernel.createSegment("s", 4);
    kernel.attach(a, seg, vm::Access::ReadWrite);
    kernel.attach(b, seg, vm::Access::Read);
    const vm::VAddr base = sys.state().segments.find(seg)->base();
    kernel.switchTo(a);
    sys.touchRange(base, 4 * vm::kPageBytes);
    const std::size_t occupancy = sys.plbSystem()->cache().occupancy();
    kernel.switchTo(b);
    EXPECT_EQ(sys.plbSystem()->cache().occupancy(), occupancy);
    // And b hits a's lines directly.
    const u64 misses = sys.plbSystem()->cache().misses.value();
    sys.load(base);
    EXPECT_EQ(sys.plbSystem()->cache().misses.value(), misses);
}

TEST(FlushingVcacheTest, FlushingMachineStillEnforcesProtection)
{
    core::System sys(SystemConfig::flushingVcacheSystem());
    auto &kernel = sys.kernel();
    const os::DomainId a = kernel.createDomain("a");
    const os::DomainId b = kernel.createDomain("b");
    const vm::SegmentId seg = kernel.createSegment("s", 2);
    kernel.attach(a, seg, vm::Access::ReadWrite);
    kernel.attach(b, seg, vm::Access::Read);
    const vm::VAddr base = sys.state().segments.find(seg)->base();
    kernel.switchTo(a);
    EXPECT_TRUE(sys.store(base));
    kernel.switchTo(b);
    EXPECT_FALSE(sys.store(base));
    EXPECT_TRUE(sys.load(base));
}
