/**
 * @file
 * Kernel and pager tests, run against the full System for each
 * protection model where behaviour must be model-independent.
 */

#include <gtest/gtest.h>

#include "core/system.hh"
#include "os/pager.hh"

using namespace sasos;
using namespace sasos::core;

namespace
{

SystemConfig
configFor(ModelKind kind)
{
    SystemConfig config = SystemConfig::forModel(kind);
    config.frames = 64;
    return config;
}

} // namespace

class KernelModelTest : public ::testing::TestWithParam<ModelKind>
{
  protected:
    KernelModelTest() : sys_(configFor(GetParam())) {}

    core::System sys_;
};

TEST_P(KernelModelTest, FirstDomainBecomesCurrent)
{
    const os::DomainId d = sys_.kernel().createDomain("first");
    EXPECT_EQ(sys_.kernel().currentDomain(), d);
}

TEST_P(KernelModelTest, SwitchChangesCurrentAndCounts)
{
    auto &kernel = sys_.kernel();
    const os::DomainId a = kernel.createDomain("a");
    const os::DomainId b = kernel.createDomain("b");
    kernel.switchTo(b);
    EXPECT_EQ(kernel.currentDomain(), b);
    kernel.switchTo(b); // no-op
    kernel.switchTo(a);
    EXPECT_EQ(kernel.domainSwitches.value(), 2u);
}

TEST_P(KernelModelTest, DemandZeroMappingOnFirstTouch)
{
    auto &kernel = sys_.kernel();
    const os::DomainId d = kernel.createDomain("d");
    const vm::SegmentId seg = kernel.createSegment("s", 4);
    kernel.attach(d, seg, vm::Access::ReadWrite);
    const vm::VAddr base = sys_.state().segments.find(seg)->base();

    EXPECT_FALSE(kernel.isMapped(vm::pageOf(base)));
    EXPECT_TRUE(sys_.load(base));
    EXPECT_TRUE(kernel.isMapped(vm::pageOf(base)));
    EXPECT_EQ(kernel.demandMaps.value(), 1u);
    EXPECT_EQ(kernel.translationFaults.value(), 1u);
}

TEST_P(KernelModelTest, AccessOutsideSegmentsFails)
{
    auto &kernel = sys_.kernel();
    kernel.createDomain("d");
    EXPECT_FALSE(sys_.load(vm::VAddr(0x10)));
    EXPECT_EQ(kernel.exceptions.value(), 1u);
    EXPECT_EQ(sys_.failedReferences.value(), 1u);
}

TEST_P(KernelModelTest, RightsEnforced)
{
    auto &kernel = sys_.kernel();
    const os::DomainId d = kernel.createDomain("d");
    const vm::SegmentId seg = kernel.createSegment("s", 2);
    kernel.attach(d, seg, vm::Access::Read);
    const vm::VAddr base = sys_.state().segments.find(seg)->base();

    EXPECT_TRUE(sys_.load(base));
    EXPECT_FALSE(sys_.store(base));
    EXPECT_GE(kernel.protectionFaults.value(), 1u);
}

TEST_P(KernelModelTest, ExecuteRightsDistinct)
{
    auto &kernel = sys_.kernel();
    const os::DomainId d = kernel.createDomain("d");
    const vm::SegmentId code = kernel.createSegment("code", 2);
    kernel.attach(d, code, vm::Access::ReadExecute);
    const vm::VAddr base = sys_.state().segments.find(code)->base();
    EXPECT_TRUE(sys_.ifetch(base));
    EXPECT_TRUE(sys_.load(base));
    EXPECT_FALSE(sys_.store(base));
}

TEST_P(KernelModelTest, PageOverrideChangesOneDomainOnly)
{
    auto &kernel = sys_.kernel();
    const os::DomainId a = kernel.createDomain("a");
    const os::DomainId b = kernel.createDomain("b");
    const vm::SegmentId seg = kernel.createSegment("s", 2);
    kernel.attach(a, seg, vm::Access::ReadWrite);
    kernel.attach(b, seg, vm::Access::ReadWrite);
    const vm::VAddr base = sys_.state().segments.find(seg)->base();
    const vm::Vpn vpn = vm::pageOf(base);

    kernel.switchTo(a);
    EXPECT_TRUE(sys_.store(base));
    kernel.setPageRights(a, vpn, vm::Access::Read);
    EXPECT_FALSE(sys_.store(base));
    EXPECT_TRUE(sys_.load(base));
    kernel.switchTo(b);
    EXPECT_TRUE(sys_.store(base));

    kernel.clearPageRights(a, vpn);
    kernel.switchTo(a);
    EXPECT_TRUE(sys_.store(base));
}

TEST_P(KernelModelTest, SegmentRightsChangeApplies)
{
    auto &kernel = sys_.kernel();
    const os::DomainId d = kernel.createDomain("d");
    const vm::SegmentId seg = kernel.createSegment("s", 4);
    kernel.attach(d, seg, vm::Access::ReadWrite);
    const vm::VAddr base = sys_.state().segments.find(seg)->base();
    EXPECT_TRUE(sys_.store(base));
    kernel.setSegmentRights(d, seg, vm::Access::Read);
    EXPECT_FALSE(sys_.store(base));
    EXPECT_FALSE(sys_.store(base + vm::kPageBytes));
    EXPECT_TRUE(sys_.load(base));
}

TEST_P(KernelModelTest, DetachRevokesEverything)
{
    auto &kernel = sys_.kernel();
    const os::DomainId d = kernel.createDomain("d");
    const vm::SegmentId seg = kernel.createSegment("s", 2);
    kernel.attach(d, seg, vm::Access::ReadWrite);
    const vm::VAddr base = sys_.state().segments.find(seg)->base();
    EXPECT_TRUE(sys_.store(base));
    kernel.detach(d, seg);
    EXPECT_FALSE(sys_.load(base));
}

TEST_P(KernelModelTest, RestrictPageExcludesAllDomains)
{
    auto &kernel = sys_.kernel();
    const os::DomainId a = kernel.createDomain("a");
    const os::DomainId b = kernel.createDomain("b");
    const vm::SegmentId seg = kernel.createSegment("s", 2);
    kernel.attach(a, seg, vm::Access::ReadWrite);
    kernel.attach(b, seg, vm::Access::ReadWrite);
    const vm::VAddr base = sys_.state().segments.find(seg)->base();
    const vm::Vpn vpn = vm::pageOf(base);

    kernel.switchTo(a);
    EXPECT_TRUE(sys_.store(base));
    kernel.restrictPage(vpn, vm::Access::None);
    EXPECT_FALSE(sys_.load(base));
    kernel.switchTo(b);
    EXPECT_FALSE(sys_.load(base));
    kernel.unrestrictPage(vpn);
    EXPECT_TRUE(sys_.store(base));
    kernel.switchTo(a);
    EXPECT_TRUE(sys_.store(base));
}

TEST_P(KernelModelTest, RestrictExemptDomainKeepsAccess)
{
    auto &kernel = sys_.kernel();
    const os::DomainId a = kernel.createDomain("a");
    const os::DomainId server = kernel.createDomain("server");
    const vm::SegmentId seg = kernel.createSegment("s", 2);
    kernel.attach(a, seg, vm::Access::ReadWrite);
    kernel.attach(server, seg, vm::Access::ReadWrite);
    const vm::VAddr base = sys_.state().segments.find(seg)->base();

    kernel.switchTo(a);
    EXPECT_TRUE(sys_.store(base));
    kernel.restrictPage(vm::pageOf(base), vm::Access::None, server);
    EXPECT_FALSE(sys_.load(base));
    kernel.switchTo(server);
    EXPECT_TRUE(sys_.store(base));
}

TEST_P(KernelModelTest, UnmapFlushesAndFaultsNextAccess)
{
    auto &kernel = sys_.kernel();
    const os::DomainId d = kernel.createDomain("d");
    const vm::SegmentId seg = kernel.createSegment("s", 2);
    kernel.attach(d, seg, vm::Access::ReadWrite);
    const vm::VAddr base = sys_.state().segments.find(seg)->base();
    EXPECT_TRUE(sys_.store(base));
    const u64 unmaps_before = kernel.unmaps.value();
    kernel.unmapPage(vm::pageOf(base));
    EXPECT_EQ(kernel.unmaps.value(), unmaps_before + 1);
    EXPECT_FALSE(kernel.isMapped(vm::pageOf(base)));
    // Next access demand-maps a fresh page.
    EXPECT_TRUE(sys_.load(base));
    EXPECT_TRUE(kernel.isMapped(vm::pageOf(base)));
}

TEST_P(KernelModelTest, DestroySegmentUnmapsAndRevokes)
{
    auto &kernel = sys_.kernel();
    const os::DomainId d = kernel.createDomain("d");
    const vm::SegmentId seg = kernel.createSegment("s", 4);
    kernel.attach(d, seg, vm::Access::ReadWrite);
    const vm::VAddr base = sys_.state().segments.find(seg)->base();
    sys_.touchRange(base, 4 * vm::kPageBytes);
    const u64 in_use = sys_.state().frameAllocator.inUse();
    kernel.destroySegment(seg);
    EXPECT_EQ(sys_.state().frameAllocator.inUse(), in_use - 4);
    EXPECT_FALSE(sys_.load(base));
}

TEST_P(KernelModelTest, KernelOpsChargeCycles)
{
    auto &kernel = sys_.kernel();
    const os::DomainId d = kernel.createDomain("d");
    const vm::SegmentId seg = kernel.createSegment("s", 2);
    const u64 before = sys_.cycles().count();
    kernel.attach(d, seg, vm::Access::Read);
    EXPECT_GT(sys_.cycles().count(), before);
}

TEST_P(KernelModelTest, CanonicalRightsReflectTables)
{
    auto &kernel = sys_.kernel();
    const os::DomainId d = kernel.createDomain("d");
    const vm::SegmentId seg = kernel.createSegment("s", 2);
    kernel.attach(d, seg, vm::Access::Read);
    const vm::Vpn vpn = sys_.state().segments.find(seg)->firstPage;
    EXPECT_EQ(kernel.canonicalRights(d, vpn), vm::Access::Read);
    kernel.setPageRights(d, vpn, vm::Access::ReadWrite);
    EXPECT_EQ(kernel.canonicalRights(d, vpn), vm::Access::ReadWrite);
}

INSTANTIATE_TEST_SUITE_P(Models, KernelModelTest,
                         ::testing::Values(ModelKind::Plb,
                                           ModelKind::PageGroup,
                                           ModelKind::Conventional),
                         [](const ::testing::TestParamInfo<ModelKind> &i) {
                             switch (i.param) {
                               case ModelKind::Plb:
                                 return "plb";
                               case ModelKind::PageGroup:
                                 return "pg";
                               default:
                                 return "conv";
                             }
                         });

// ---------------------------------------------------------------------
// Pager

class PagerTest : public ::testing::TestWithParam<ModelKind>
{
  protected:
    PagerTest() : sys_(configFor(GetParam())) {}

    core::System sys_;
};

TEST_P(PagerTest, PageOutThenInRestoresAccess)
{
    auto &kernel = sys_.kernel();
    os::Pager &pager = sys_.makePager(os::PagerConfig{true});
    const os::DomainId d = kernel.createDomain("app");
    const vm::SegmentId seg = kernel.createSegment("s", 2);
    kernel.attach(d, seg, vm::Access::ReadWrite);
    kernel.attach(pager.domainId(), seg, vm::Access::ReadWrite);
    const vm::VAddr base = sys_.state().segments.find(seg)->base();
    kernel.switchTo(d);
    EXPECT_TRUE(sys_.store(base));

    const vm::Vpn vpn = vm::pageOf(base);
    pager.pageOut(vpn);
    EXPECT_FALSE(kernel.isMapped(vpn));
    EXPECT_TRUE(kernel.isOnDisk(vpn));

    // The app's next touch faults the page back in transparently.
    EXPECT_TRUE(sys_.load(base));
    EXPECT_TRUE(kernel.isMapped(vpn));
    EXPECT_FALSE(kernel.isOnDisk(vpn));
    EXPECT_EQ(pager.pageIns.value(), 1u);
}

TEST_P(PagerTest, EvictionUnderFramePressure)
{
    SystemConfig config = configFor(GetParam());
    config.frames = 8;
    core::System sys(config);
    auto &kernel = sys.kernel();
    os::Pager &pager = sys.makePager(os::PagerConfig{false});
    const os::DomainId d = kernel.createDomain("app");
    const vm::SegmentId seg = kernel.createSegment("s", 16);
    kernel.attach(d, seg, vm::Access::ReadWrite);
    kernel.attach(pager.domainId(), seg, vm::Access::ReadWrite);
    kernel.switchTo(d);
    const vm::VAddr base = sys.state().segments.find(seg)->base();

    // Touch twice as many pages as there are frames.
    for (u64 p = 0; p < 16; ++p)
        EXPECT_TRUE(sys.store(base + p * vm::kPageBytes));
    EXPECT_GE(pager.evictions.value(), 8u);
    EXPECT_LE(sys.state().frameAllocator.inUse(), 8u);
    // Everything is still accessible (paged back in on demand).
    for (u64 p = 0; p < 16; ++p)
        EXPECT_TRUE(sys.load(base + p * vm::kPageBytes));
}

TEST_P(PagerTest, CompressionChargesIo)
{
    auto &kernel = sys_.kernel();
    os::Pager &pager = sys_.makePager(os::PagerConfig{true});
    const os::DomainId d = kernel.createDomain("app");
    const vm::SegmentId seg = kernel.createSegment("s", 1);
    kernel.attach(d, seg, vm::Access::ReadWrite);
    const vm::VAddr base = sys_.state().segments.find(seg)->base();
    kernel.switchTo(d);
    sys_.store(base);

    const u64 io_before =
        sys_.account().byCategory(CostCategory::Io).count();
    pager.pageOut(vm::pageOf(base));
    const u64 io_after =
        sys_.account().byCategory(CostCategory::Io).count();
    EXPECT_GE(io_after - io_before,
              sys_.costs().diskAccess.count() +
                  sys_.costs().compressPage.count());
}

INSTANTIATE_TEST_SUITE_P(Models, PagerTest,
                         ::testing::Values(ModelKind::Plb,
                                           ModelKind::PageGroup,
                                           ModelKind::Conventional),
                         [](const ::testing::TestParamInfo<ModelKind> &i) {
                             switch (i.param) {
                               case ModelKind::Plb:
                                 return "plb";
                               case ModelKind::PageGroup:
                                 return "pg";
                               default:
                                 return "conv";
                             }
                         });
