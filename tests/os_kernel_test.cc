/**
 * @file
 * Kernel and pager tests, run against the full System for each
 * protection model where behaviour must be model-independent.
 */

#include <gtest/gtest.h>

#include "core/system.hh"
#include "os/pager.hh"

using namespace sasos;
using namespace sasos::core;

namespace
{

SystemConfig
configFor(ModelKind kind)
{
    SystemConfig config = SystemConfig::forModel(kind);
    config.frames = 64;
    return config;
}

} // namespace

class KernelModelTest : public ::testing::TestWithParam<ModelKind>
{
  protected:
    KernelModelTest() : sys_(configFor(GetParam())) {}

    core::System sys_;
};

TEST_P(KernelModelTest, FirstDomainBecomesCurrent)
{
    const os::DomainId d = sys_.kernel().createDomain("first");
    EXPECT_EQ(sys_.kernel().currentDomain(), d);
}

TEST_P(KernelModelTest, SwitchChangesCurrentAndCounts)
{
    auto &kernel = sys_.kernel();
    const os::DomainId a = kernel.createDomain("a");
    const os::DomainId b = kernel.createDomain("b");
    kernel.switchTo(b);
    EXPECT_EQ(kernel.currentDomain(), b);
    kernel.switchTo(b); // no-op
    kernel.switchTo(a);
    EXPECT_EQ(kernel.domainSwitches.value(), 2u);
}

TEST_P(KernelModelTest, DemandZeroMappingOnFirstTouch)
{
    auto &kernel = sys_.kernel();
    const os::DomainId d = kernel.createDomain("d");
    const vm::SegmentId seg = kernel.createSegment("s", 4);
    kernel.attach(d, seg, vm::Access::ReadWrite);
    const vm::VAddr base = sys_.state().segments.find(seg)->base();

    EXPECT_FALSE(kernel.isMapped(vm::pageOf(base)));
    EXPECT_TRUE(sys_.load(base));
    EXPECT_TRUE(kernel.isMapped(vm::pageOf(base)));
    EXPECT_EQ(kernel.demandMaps.value(), 1u);
    EXPECT_EQ(kernel.translationFaults.value(), 1u);
}

TEST_P(KernelModelTest, AccessOutsideSegmentsFails)
{
    auto &kernel = sys_.kernel();
    kernel.createDomain("d");
    EXPECT_FALSE(sys_.load(vm::VAddr(0x10)));
    EXPECT_EQ(kernel.exceptions.value(), 1u);
    EXPECT_EQ(sys_.failedReferences.value(), 1u);
}

TEST_P(KernelModelTest, RightsEnforced)
{
    auto &kernel = sys_.kernel();
    const os::DomainId d = kernel.createDomain("d");
    const vm::SegmentId seg = kernel.createSegment("s", 2);
    kernel.attach(d, seg, vm::Access::Read);
    const vm::VAddr base = sys_.state().segments.find(seg)->base();

    EXPECT_TRUE(sys_.load(base));
    EXPECT_FALSE(sys_.store(base));
    EXPECT_GE(kernel.protectionFaults.value(), 1u);
}

TEST_P(KernelModelTest, ExecuteRightsDistinct)
{
    auto &kernel = sys_.kernel();
    const os::DomainId d = kernel.createDomain("d");
    const vm::SegmentId code = kernel.createSegment("code", 2);
    kernel.attach(d, code, vm::Access::ReadExecute);
    const vm::VAddr base = sys_.state().segments.find(code)->base();
    EXPECT_TRUE(sys_.ifetch(base));
    EXPECT_TRUE(sys_.load(base));
    EXPECT_FALSE(sys_.store(base));
}

TEST_P(KernelModelTest, PageOverrideChangesOneDomainOnly)
{
    auto &kernel = sys_.kernel();
    const os::DomainId a = kernel.createDomain("a");
    const os::DomainId b = kernel.createDomain("b");
    const vm::SegmentId seg = kernel.createSegment("s", 2);
    kernel.attach(a, seg, vm::Access::ReadWrite);
    kernel.attach(b, seg, vm::Access::ReadWrite);
    const vm::VAddr base = sys_.state().segments.find(seg)->base();
    const vm::Vpn vpn = vm::pageOf(base);

    kernel.switchTo(a);
    EXPECT_TRUE(sys_.store(base));
    kernel.setPageRights(a, vpn, vm::Access::Read);
    EXPECT_FALSE(sys_.store(base));
    EXPECT_TRUE(sys_.load(base));
    kernel.switchTo(b);
    EXPECT_TRUE(sys_.store(base));

    kernel.clearPageRights(a, vpn);
    kernel.switchTo(a);
    EXPECT_TRUE(sys_.store(base));
}

TEST_P(KernelModelTest, SegmentRightsChangeApplies)
{
    auto &kernel = sys_.kernel();
    const os::DomainId d = kernel.createDomain("d");
    const vm::SegmentId seg = kernel.createSegment("s", 4);
    kernel.attach(d, seg, vm::Access::ReadWrite);
    const vm::VAddr base = sys_.state().segments.find(seg)->base();
    EXPECT_TRUE(sys_.store(base));
    kernel.setSegmentRights(d, seg, vm::Access::Read);
    EXPECT_FALSE(sys_.store(base));
    EXPECT_FALSE(sys_.store(base + vm::kPageBytes));
    EXPECT_TRUE(sys_.load(base));
}

TEST_P(KernelModelTest, DetachRevokesEverything)
{
    auto &kernel = sys_.kernel();
    const os::DomainId d = kernel.createDomain("d");
    const vm::SegmentId seg = kernel.createSegment("s", 2);
    kernel.attach(d, seg, vm::Access::ReadWrite);
    const vm::VAddr base = sys_.state().segments.find(seg)->base();
    EXPECT_TRUE(sys_.store(base));
    kernel.detach(d, seg);
    EXPECT_FALSE(sys_.load(base));
}

TEST_P(KernelModelTest, RestrictPageExcludesAllDomains)
{
    auto &kernel = sys_.kernel();
    const os::DomainId a = kernel.createDomain("a");
    const os::DomainId b = kernel.createDomain("b");
    const vm::SegmentId seg = kernel.createSegment("s", 2);
    kernel.attach(a, seg, vm::Access::ReadWrite);
    kernel.attach(b, seg, vm::Access::ReadWrite);
    const vm::VAddr base = sys_.state().segments.find(seg)->base();
    const vm::Vpn vpn = vm::pageOf(base);

    kernel.switchTo(a);
    EXPECT_TRUE(sys_.store(base));
    kernel.restrictPage(vpn, vm::Access::None);
    EXPECT_FALSE(sys_.load(base));
    kernel.switchTo(b);
    EXPECT_FALSE(sys_.load(base));
    kernel.unrestrictPage(vpn);
    EXPECT_TRUE(sys_.store(base));
    kernel.switchTo(a);
    EXPECT_TRUE(sys_.store(base));
}

TEST_P(KernelModelTest, RestrictExemptDomainKeepsAccess)
{
    auto &kernel = sys_.kernel();
    const os::DomainId a = kernel.createDomain("a");
    const os::DomainId server = kernel.createDomain("server");
    const vm::SegmentId seg = kernel.createSegment("s", 2);
    kernel.attach(a, seg, vm::Access::ReadWrite);
    kernel.attach(server, seg, vm::Access::ReadWrite);
    const vm::VAddr base = sys_.state().segments.find(seg)->base();

    kernel.switchTo(a);
    EXPECT_TRUE(sys_.store(base));
    kernel.restrictPage(vm::pageOf(base), vm::Access::None, server);
    EXPECT_FALSE(sys_.load(base));
    kernel.switchTo(server);
    EXPECT_TRUE(sys_.store(base));
}

TEST_P(KernelModelTest, UnmapFlushesAndFaultsNextAccess)
{
    auto &kernel = sys_.kernel();
    const os::DomainId d = kernel.createDomain("d");
    const vm::SegmentId seg = kernel.createSegment("s", 2);
    kernel.attach(d, seg, vm::Access::ReadWrite);
    const vm::VAddr base = sys_.state().segments.find(seg)->base();
    EXPECT_TRUE(sys_.store(base));
    const u64 unmaps_before = kernel.unmaps.value();
    kernel.unmapPage(vm::pageOf(base));
    EXPECT_EQ(kernel.unmaps.value(), unmaps_before + 1);
    EXPECT_FALSE(kernel.isMapped(vm::pageOf(base)));
    // Next access demand-maps a fresh page.
    EXPECT_TRUE(sys_.load(base));
    EXPECT_TRUE(kernel.isMapped(vm::pageOf(base)));
}

TEST_P(KernelModelTest, DestroySegmentUnmapsAndRevokes)
{
    auto &kernel = sys_.kernel();
    const os::DomainId d = kernel.createDomain("d");
    const vm::SegmentId seg = kernel.createSegment("s", 4);
    kernel.attach(d, seg, vm::Access::ReadWrite);
    const vm::VAddr base = sys_.state().segments.find(seg)->base();
    sys_.touchRange(base, 4 * vm::kPageBytes);
    const u64 in_use = sys_.state().frameAllocator.inUse();
    kernel.destroySegment(seg);
    EXPECT_EQ(sys_.state().frameAllocator.inUse(), in_use - 4);
    EXPECT_FALSE(sys_.load(base));
}

TEST_P(KernelModelTest, KernelOpsChargeCycles)
{
    auto &kernel = sys_.kernel();
    const os::DomainId d = kernel.createDomain("d");
    const vm::SegmentId seg = kernel.createSegment("s", 2);
    const u64 before = sys_.cycles().count();
    kernel.attach(d, seg, vm::Access::Read);
    EXPECT_GT(sys_.cycles().count(), before);
}

TEST_P(KernelModelTest, CanonicalRightsReflectTables)
{
    auto &kernel = sys_.kernel();
    const os::DomainId d = kernel.createDomain("d");
    const vm::SegmentId seg = kernel.createSegment("s", 2);
    kernel.attach(d, seg, vm::Access::Read);
    const vm::Vpn vpn = sys_.state().segments.find(seg)->firstPage;
    EXPECT_EQ(kernel.canonicalRights(d, vpn), vm::Access::Read);
    kernel.setPageRights(d, vpn, vm::Access::ReadWrite);
    EXPECT_EQ(kernel.canonicalRights(d, vpn), vm::Access::ReadWrite);
}

TEST_P(KernelModelTest, ForkCowSharesFramesUntilFirstStore)
{
    auto &kernel = sys_.kernel();
    const os::DomainId parent = kernel.createDomain("parent");
    const os::DomainId child = kernel.createDomain("child");
    const vm::SegmentId src = kernel.createSegment("src", 2);
    kernel.attach(parent, src, vm::Access::ReadWrite);
    const vm::VAddr base = sys_.state().segments.find(src)->base();
    kernel.switchTo(parent);
    EXPECT_TRUE(sys_.store(base));

    const vm::SegmentId dst =
        kernel.forkSegmentCow(src, child, vm::Access::ReadWrite, "dst");
    EXPECT_EQ(kernel.forks.value(), 1u);
    const vm::Vpn src_vpn = vm::pageOf(base);
    const vm::Vpn dst_vpn = sys_.state().segments.find(dst)->firstPage;
    const auto &pages = sys_.state().pageTable;
    ASSERT_TRUE(pages.isMapped(dst_vpn));
    // One frame backs both pages, refcounted, CoW-masked on each end.
    const vm::Pfn shared = pages.lookup(src_vpn)->pfn;
    EXPECT_EQ(pages.lookup(dst_vpn)->pfn, shared);
    EXPECT_EQ(sys_.state().frameAllocator.refCount(shared), 2u);
    EXPECT_TRUE(kernel.isCowProtected(src_vpn));
    EXPECT_TRUE(kernel.isCowProtected(dst_vpn));

    // Loads on both ends still share; the first store resolves to a
    // private copy and lifts the masks.
    EXPECT_TRUE(sys_.load(base));
    kernel.switchTo(child);
    EXPECT_TRUE(sys_.load(sys_.state().segments.find(dst)->base()));
    EXPECT_EQ(kernel.cowFaults.value(), 0u);
    EXPECT_TRUE(sys_.store(sys_.state().segments.find(dst)->base()));
    EXPECT_EQ(kernel.cowFaults.value(), 1u);
    EXPECT_EQ(kernel.cowCopies.value(), 1u);
    EXPECT_NE(pages.lookup(dst_vpn)->pfn, pages.lookup(src_vpn)->pfn);
    EXPECT_EQ(sys_.state().frameAllocator.refCount(shared), 1u);
    EXPECT_FALSE(kernel.isCowProtected(dst_vpn));

    // The parent is now the last sharer: its store reuses in place.
    kernel.switchTo(parent);
    EXPECT_TRUE(sys_.store(base));
    EXPECT_EQ(kernel.cowReuses.value(), 1u);
    EXPECT_FALSE(kernel.isCowProtected(src_vpn));
    EXPECT_EQ(pages.lookup(src_vpn)->pfn, shared);
}

TEST_P(KernelModelTest, ForkCowLeavesUnmappedPagesDemandZero)
{
    auto &kernel = sys_.kernel();
    const os::DomainId parent = kernel.createDomain("parent");
    const os::DomainId child = kernel.createDomain("child");
    const vm::SegmentId src = kernel.createSegment("src", 2);
    kernel.attach(parent, src, vm::Access::ReadWrite);
    // Fork with no source page ever touched: nothing to share.
    const vm::SegmentId dst =
        kernel.forkSegmentCow(src, child, vm::Access::ReadWrite, "dst");
    const vm::Vpn dst_vpn = sys_.state().segments.find(dst)->firstPage;
    EXPECT_FALSE(sys_.state().pageTable.isMapped(dst_vpn));
    EXPECT_FALSE(kernel.isCowProtected(dst_vpn));
    // First touch in the child demand-maps a private zero page.
    kernel.switchTo(child);
    EXPECT_TRUE(sys_.store(sys_.state().segments.find(dst)->base()));
    EXPECT_EQ(kernel.cowFaults.value(), 0u);
    ASSERT_TRUE(sys_.state().pageTable.isMapped(dst_vpn));
    EXPECT_EQ(sys_.state().frameAllocator.refCount(
                  sys_.state().pageTable.lookup(dst_vpn)->pfn),
              1u);
}

TEST_P(KernelModelTest, CowMaskDeniesWritesWithoutSegmentWriteRight)
{
    auto &kernel = sys_.kernel();
    const os::DomainId parent = kernel.createDomain("parent");
    const os::DomainId child = kernel.createDomain("child");
    const vm::SegmentId src = kernel.createSegment("src", 1);
    kernel.attach(parent, src, vm::Access::ReadWrite);
    const vm::VAddr base = sys_.state().segments.find(src)->base();
    kernel.switchTo(parent);
    EXPECT_TRUE(sys_.store(base));
    // The child gets a read-only fork: a store there is a genuine
    // protection fault, not a CoW resolution.
    const vm::SegmentId dst =
        kernel.forkSegmentCow(src, child, vm::Access::Read, "dst");
    kernel.switchTo(child);
    const vm::VAddr child_base = sys_.state().segments.find(dst)->base();
    EXPECT_TRUE(sys_.load(child_base));
    EXPECT_FALSE(sys_.store(child_base));
    EXPECT_EQ(kernel.cowFaults.value(), 0u);
    EXPECT_TRUE(kernel.isCowProtected(vm::pageOf(child_base)));
}

INSTANTIATE_TEST_SUITE_P(Models, KernelModelTest,
                         ::testing::Values(ModelKind::Plb,
                                           ModelKind::PageGroup,
                                           ModelKind::Conventional),
                         [](const ::testing::TestParamInfo<ModelKind> &i) {
                             switch (i.param) {
                               case ModelKind::Plb:
                                 return "plb";
                               case ModelKind::PageGroup:
                                 return "pg";
                               default:
                                 return "conv";
                             }
                         });

// ---------------------------------------------------------------------
// Pager

class PagerTest : public ::testing::TestWithParam<ModelKind>
{
  protected:
    PagerTest() : sys_(configFor(GetParam())) {}

    core::System sys_;
};

TEST_P(PagerTest, PageOutThenInRestoresAccess)
{
    auto &kernel = sys_.kernel();
    os::Pager &pager = sys_.makePager(os::PagerConfig{true});
    const os::DomainId d = kernel.createDomain("app");
    const vm::SegmentId seg = kernel.createSegment("s", 2);
    kernel.attach(d, seg, vm::Access::ReadWrite);
    kernel.attach(pager.domainId(), seg, vm::Access::ReadWrite);
    const vm::VAddr base = sys_.state().segments.find(seg)->base();
    kernel.switchTo(d);
    EXPECT_TRUE(sys_.store(base));

    const vm::Vpn vpn = vm::pageOf(base);
    pager.pageOut(vpn);
    EXPECT_FALSE(kernel.isMapped(vpn));
    EXPECT_TRUE(kernel.isOnDisk(vpn));

    // The app's next touch faults the page back in transparently.
    EXPECT_TRUE(sys_.load(base));
    EXPECT_TRUE(kernel.isMapped(vpn));
    EXPECT_FALSE(kernel.isOnDisk(vpn));
    EXPECT_EQ(pager.pageIns.value(), 1u);
}

TEST_P(PagerTest, EvictionUnderFramePressure)
{
    SystemConfig config = configFor(GetParam());
    config.frames = 8;
    core::System sys(config);
    auto &kernel = sys.kernel();
    os::Pager &pager = sys.makePager(os::PagerConfig{false});
    const os::DomainId d = kernel.createDomain("app");
    const vm::SegmentId seg = kernel.createSegment("s", 16);
    kernel.attach(d, seg, vm::Access::ReadWrite);
    kernel.attach(pager.domainId(), seg, vm::Access::ReadWrite);
    kernel.switchTo(d);
    const vm::VAddr base = sys.state().segments.find(seg)->base();

    // Touch twice as many pages as there are frames.
    for (u64 p = 0; p < 16; ++p)
        EXPECT_TRUE(sys.store(base + p * vm::kPageBytes));
    EXPECT_GE(pager.evictions.value(), 8u);
    EXPECT_LE(sys.state().frameAllocator.inUse(), 8u);
    // Everything is still accessible (paged back in on demand).
    for (u64 p = 0; p < 16; ++p)
        EXPECT_TRUE(sys.load(base + p * vm::kPageBytes));
}

TEST_P(PagerTest, CompressionChargesIo)
{
    auto &kernel = sys_.kernel();
    os::Pager &pager = sys_.makePager(os::PagerConfig{true});
    const os::DomainId d = kernel.createDomain("app");
    const vm::SegmentId seg = kernel.createSegment("s", 1);
    kernel.attach(d, seg, vm::Access::ReadWrite);
    const vm::VAddr base = sys_.state().segments.find(seg)->base();
    kernel.switchTo(d);
    sys_.store(base);

    const u64 io_before =
        sys_.account().byCategory(CostCategory::Io).count();
    pager.pageOut(vm::pageOf(base));
    const u64 io_after =
        sys_.account().byCategory(CostCategory::Io).count();
    EXPECT_GE(io_after - io_before,
              sys_.costs().diskAccess.count() +
                  sys_.costs().compressPage.count());
}

INSTANTIATE_TEST_SUITE_P(Models, PagerTest,
                         ::testing::Values(ModelKind::Plb,
                                           ModelKind::PageGroup,
                                           ModelKind::Conventional),
                         [](const ::testing::TestParamInfo<ModelKind> &i) {
                             switch (i.param) {
                               case ModelKind::Plb:
                                 return "plb";
                               case ModelKind::PageGroup:
                                 return "pg";
                               default:
                                 return "conv";
                             }
                         });
