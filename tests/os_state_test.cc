/**
 * @file
 * Tests for the canonical VM state: domains, reverse indexes, masks
 * and rights vectors.
 */

#include <gtest/gtest.h>

#include "os/vm_state.hh"

using namespace sasos;
using namespace sasos::os;

class VmStateTest : public ::testing::Test
{
  protected:
    VmStateTest() : state_(1024)
    {
        a_ = state_.createDomain("a").id;
        b_ = state_.createDomain("b").id;
        seg_ = state_.segments.create("seg", 8);
        first_ = state_.segments.find(seg_)->firstPage;
    }

    void
    attach(DomainId d, vm::Access rights)
    {
        state_.domain(d).prot.attachSegment(seg_, rights);
        state_.noteAttached(d, seg_);
    }

    VmState state_;
    DomainId a_ = 0;
    DomainId b_ = 0;
    vm::SegmentId seg_ = 0;
    vm::Vpn first_;
};

TEST_F(VmStateTest, DomainLifecycle)
{
    EXPECT_NE(a_, b_);
    EXPECT_NE(state_.findDomain(a_), nullptr);
    state_.destroyDomain(a_);
    EXPECT_EQ(state_.findDomain(a_), nullptr);
    EXPECT_NE(state_.findDomain(b_), nullptr);
}

TEST_F(VmStateTest, AttachedDomainsIndex)
{
    attach(a_, vm::Access::ReadWrite);
    attach(b_, vm::Access::Read);
    const auto &attached = state_.attachedDomains(seg_);
    EXPECT_EQ(attached.size(), 2u);
    state_.noteDetached(a_, seg_);
    EXPECT_EQ(state_.attachedDomains(seg_).size(), 1u);
    EXPECT_TRUE(state_.attachedDomains(999).empty());
}

TEST_F(VmStateTest, DestroyDomainCleansIndexes)
{
    attach(a_, vm::Access::ReadWrite);
    state_.notePageOverride(a_, first_);
    state_.destroyDomain(a_);
    EXPECT_TRUE(state_.attachedDomains(seg_).empty());
    EXPECT_TRUE(state_.overrideDomains(first_).empty());
}

TEST_F(VmStateTest, EffectiveRightsWithoutMask)
{
    attach(a_, vm::Access::ReadWrite);
    EXPECT_EQ(state_.effectiveRights(a_, first_), vm::Access::ReadWrite);
    EXPECT_EQ(state_.effectiveRights(b_, first_), vm::Access::None);
    EXPECT_EQ(state_.effectiveRights(999, first_), vm::Access::None);
}

TEST_F(VmStateTest, MaskIntersectsEveryone)
{
    attach(a_, vm::Access::ReadWrite);
    attach(b_, vm::Access::Read);
    state_.setPageMask(first_, vm::Access::Read);
    EXPECT_EQ(state_.effectiveRights(a_, first_), vm::Access::Read);
    EXPECT_EQ(state_.effectiveRights(b_, first_), vm::Access::Read);
    state_.clearPageMask(first_);
    EXPECT_EQ(state_.effectiveRights(a_, first_), vm::Access::ReadWrite);
}

TEST_F(VmStateTest, MaskExemptsThePager)
{
    attach(a_, vm::Access::ReadWrite);
    attach(b_, vm::Access::ReadWrite);
    state_.setPageMask(first_, vm::Access::None, b_);
    EXPECT_EQ(state_.effectiveRights(a_, first_), vm::Access::None);
    EXPECT_EQ(state_.effectiveRights(b_, first_), vm::Access::ReadWrite);
}

TEST_F(VmStateTest, MaskOnlyAffectsItsPage)
{
    attach(a_, vm::Access::ReadWrite);
    state_.setPageMask(first_, vm::Access::None);
    EXPECT_EQ(state_.effectiveRights(a_, first_ + 1),
              vm::Access::ReadWrite);
}

TEST_F(VmStateTest, RightsVectorCollectsNonNoneDomains)
{
    attach(a_, vm::Access::ReadWrite);
    attach(b_, vm::Access::Read);
    const RightsVector vector = state_.rightsVector(first_);
    ASSERT_EQ(vector.size(), 2u);
    EXPECT_EQ(vector[0].first, a_);
    EXPECT_EQ(vector[0].second, vm::Access::ReadWrite);
    EXPECT_EQ(vector[1].first, b_);
    EXPECT_EQ(vector[1].second, vm::Access::Read);
}

TEST_F(VmStateTest, RightsVectorDropsNoneGrants)
{
    attach(a_, vm::Access::None);
    attach(b_, vm::Access::Read);
    const RightsVector vector = state_.rightsVector(first_);
    ASSERT_EQ(vector.size(), 1u);
    EXPECT_EQ(vector[0].first, b_);
}

TEST_F(VmStateTest, RightsVectorSeesOverrides)
{
    attach(a_, vm::Access::Read);
    state_.domain(a_).prot.setPageRights(first_, vm::Access::ReadWrite);
    state_.notePageOverride(a_, first_);
    const RightsVector vector = state_.rightsVector(first_);
    ASSERT_EQ(vector.size(), 1u);
    EXPECT_EQ(vector[0].second, vm::Access::ReadWrite);
}

TEST_F(VmStateTest, RightsVectorEmptyOutsideSegments)
{
    EXPECT_TRUE(state_.rightsVector(vm::Vpn(3)).empty());
}

TEST_F(VmStateTest, SegmentDefaultVectorIgnoresOverridesAndMasks)
{
    attach(a_, vm::Access::ReadWrite);
    state_.domain(a_).prot.setPageRights(first_, vm::Access::None);
    state_.notePageOverride(a_, first_);
    state_.setPageMask(first_ + 1, vm::Access::None);
    const RightsVector vector = state_.segmentDefaultVector(seg_);
    ASSERT_EQ(vector.size(), 1u);
    EXPECT_EQ(vector[0].second, vm::Access::ReadWrite);
}

TEST_F(VmStateTest, PagesWithStateFindsOverridesAndMasks)
{
    attach(a_, vm::Access::ReadWrite);
    state_.notePageOverride(a_, first_ + 2);
    state_.setPageMask(first_ + 5, vm::Access::None);
    const auto pages = state_.pagesWithStateIn(first_, 8);
    ASSERT_EQ(pages.size(), 2u);
    EXPECT_EQ(pages[0], first_ + 2);
    EXPECT_EQ(pages[1], first_ + 5);
    EXPECT_TRUE(state_.pagesWithStateIn(first_ + 6, 2).empty());
}

TEST_F(VmStateTest, ForgetOverridesInRange)
{
    state_.notePageOverride(a_, first_);
    state_.notePageOverride(b_, first_);
    state_.notePageOverride(a_, first_ + 1);
    state_.forgetOverridesIn(first_, 8, a_);
    EXPECT_EQ(state_.overrideDomains(first_).size(), 1u);
    EXPECT_TRUE(state_.overrideDomains(first_ + 1).empty());
    state_.forgetOverridesIn(first_, 8, std::nullopt);
    EXPECT_TRUE(state_.overrideDomains(first_).empty());
}

TEST_F(VmStateTest, OverrideIndexClearedPerPage)
{
    state_.notePageOverride(a_, first_);
    state_.notePageOverrideCleared(a_, first_);
    EXPECT_TRUE(state_.overrideDomains(first_).empty());
}
