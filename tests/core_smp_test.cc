/**
 * @file
 * Multiprocessor tests: shootdown broadcast, per-CPU locality of
 * switches and faults, IPI accounting, and the cross-CPU safety
 * invariant (Section 4.1.3's "on each processor").
 */

#include <gtest/gtest.h>

#include "core/smp.hh"
#include "sim/random.hh"
#include "workload/dvm.hh"

using namespace sasos;
using namespace sasos::core;

namespace
{

const char *
modelName(const ::testing::TestParamInfo<ModelKind> &info)
{
    switch (info.param) {
      case ModelKind::Plb:
        return "plb";
      case ModelKind::PageGroup:
        return "pg";
      default:
        return "conv";
    }
}

} // namespace

class SmpTest : public ::testing::TestWithParam<ModelKind>
{
  protected:
    SmpTest() : sys_(SystemConfig::forModel(GetParam()), 4)
    {
        for (int n = 0; n < 4; ++n) {
            nodes_.push_back(
                sys_.kernel().createDomain("node" + std::to_string(n)));
        }
        seg_ = sys_.kernel().createSegment("shared", 8);
        for (os::DomainId node : nodes_)
            sys_.kernel().attach(node, seg_, vm::Access::ReadWrite);
        base_ = sys_.state().segments.find(seg_)->base();
    }

    SmpSystem sys_;
    std::vector<os::DomainId> nodes_;
    vm::SegmentId seg_ = 0;
    vm::VAddr base_;
};

TEST_P(SmpTest, EveryCpuCanAccessSharedData)
{
    for (unsigned cpu = 0; cpu < 4; ++cpu) {
        sys_.runOn(cpu, nodes_[cpu]);
        EXPECT_TRUE(sys_.store(base_ + cpu * 64)) << "cpu " << cpu;
    }
}

TEST_P(SmpTest, RightsChangeShootsDownEveryCpu)
{
    // Warm every CPU's protection state for the page.
    for (unsigned cpu = 0; cpu < 4; ++cpu) {
        sys_.runOn(cpu, nodes_[cpu]);
        EXPECT_TRUE(sys_.store(base_));
    }
    // Revoke write for node 2 from CPU 0.
    sys_.runOn(0, nodes_[0]);
    sys_.kernel().setPageRights(nodes_[2], vm::pageOf(base_),
                                vm::Access::Read);
    // CPU 2 must see the revocation despite its warm structures.
    sys_.runOn(2, nodes_[2]);
    EXPECT_FALSE(sys_.store(base_));
    EXPECT_TRUE(sys_.load(base_));
    // Other CPUs unaffected.
    sys_.runOn(1, nodes_[1]);
    EXPECT_TRUE(sys_.store(base_));
}

TEST_P(SmpTest, UnmapShootdownFlushesEveryCpu)
{
    for (unsigned cpu = 0; cpu < 4; ++cpu) {
        sys_.runOn(cpu, nodes_[cpu]);
        EXPECT_TRUE(sys_.store(base_));
    }
    const u64 flush_before =
        sys_.account().byCategory(CostCategory::Flush).count();
    sys_.kernel().unmapPage(vm::pageOf(base_));
    const u64 flush_cycles =
        sys_.account().byCategory(CostCategory::Flush).count() -
        flush_before;
    // Every CPU flushed its cached line(s); at minimum the page scan
    // ran on all four.
    const u64 one_cpu_scan = (vm::kPageBytes / 32) *
                             sys_.costs().cacheFlushLine.count();
    EXPECT_GE(flush_cycles, 4 * one_cpu_scan);
    // And each CPU demand-faults the page back independently.
    for (unsigned cpu = 0; cpu < 4; ++cpu) {
        sys_.runOn(cpu, nodes_[cpu]);
        EXPECT_TRUE(sys_.load(base_));
    }
}

TEST_P(SmpTest, IpisChargedPerRemoteCpu)
{
    sys_.runOn(0, nodes_[0]);
    sys_.store(base_);
    const u64 ipis_before = sys_.broadcast().ipisSent.value();
    const u64 work_before =
        sys_.account().byCategory(CostCategory::KernelWork).count();
    sys_.kernel().restrictPage(vm::pageOf(base_), vm::Access::None);
    EXPECT_EQ(sys_.broadcast().ipisSent.value(), ipis_before + 3);
    EXPECT_GE(sys_.account().byCategory(CostCategory::KernelWork).count() -
                  work_before,
              3 * sys_.costs().interProcessorInterrupt.count());
}

TEST_P(SmpTest, DomainSwitchIsLocalToItsCpu)
{
    sys_.runOn(0, nodes_[0]);
    sys_.load(base_);
    const u64 shootdowns_before = sys_.broadcast().shootdowns.value();
    sys_.runOn(0, nodes_[1]); // switch on CPU 0 only
    EXPECT_EQ(sys_.broadcast().shootdowns.value(), shootdowns_before);
}

TEST_P(SmpTest, SafetyInvariantAcrossCpus)
{
    Rng rng(99);
    for (int op = 0; op < 1500; ++op) {
        const unsigned cpu = static_cast<unsigned>(rng.nextBelow(4));
        sys_.runOn(cpu, nodes_[cpu]);
        if (rng.bernoulli(0.1)) {
            // A rights change issued from this CPU.
            const os::DomainId target =
                nodes_[rng.nextBelow(nodes_.size())];
            const vm::Vpn vpn = vm::pageOf(base_) + rng.nextBelow(8);
            const vm::Access rights =
                rng.bernoulli(0.5)
                    ? vm::Access::Read
                    : (rng.bernoulli(0.5) ? vm::Access::ReadWrite
                                          : vm::Access::None);
            sys_.kernel().setPageRights(target, vpn, rights);
            continue;
        }
        const vm::VAddr va = base_ + rng.nextBelow(8 * vm::kPageBytes);
        const vm::AccessType type = rng.bernoulli(0.4)
                                        ? vm::AccessType::Store
                                        : vm::AccessType::Load;
        const vm::Access canonical = sys_.kernel().canonicalRights(
            nodes_[cpu], vm::pageOf(va));
        const bool ok = sys_.access(va, type);
        ASSERT_EQ(ok,
                  vm::includes(canonical, vm::requiredRight(type)))
            << "op " << op << " cpu " << cpu;
    }
}

TEST_P(SmpTest, SingleCpuMachineSendsNoIpis)
{
    SmpSystem uni(SystemConfig::forModel(GetParam()), 1);
    const os::DomainId d = uni.kernel().createDomain("d");
    const vm::SegmentId seg = uni.kernel().createSegment("s", 2);
    uni.kernel().attach(d, seg, vm::Access::ReadWrite);
    uni.runOn(0, d);
    const vm::VAddr base = uni.state().segments.find(seg)->base();
    uni.store(base);
    uni.kernel().restrictPage(vm::pageOf(base), vm::Access::None);
    EXPECT_EQ(uni.broadcast().ipisSent.value(), 0u);
}

TEST_P(SmpTest, DvmRunsWithOneNodePerCpu)
{
    wl::DvmConfig dvm;
    dvm.nodes = 4;
    dvm.quanta = 24;
    dvm.refsPerQuantum = 30;
    core::SmpSystem smp(SystemConfig::forModel(GetParam()), 4);
    const wl::DvmResult result = wl::DvmWorkload(dvm).run(smp);
    EXPECT_EQ(result.references, 24u * 30u);
    EXPECT_GT(result.readFaults + result.writeFaults, 0u);
    // Coherence rights changes crossed CPUs.
    EXPECT_GT(smp.broadcast().ipisSent.value(), 0u);
}

TEST_P(SmpTest, SmpDvmCostsMoreThanTimesharedDvm)
{
    // The shootdown tax: the same protocol on N CPUs pays IPIs the
    // single-CPU run does not.
    wl::DvmConfig dvm;
    dvm.nodes = 4;
    dvm.quanta = 24;
    dvm.refsPerQuantum = 30;
    core::System uni(SystemConfig::forModel(GetParam()));
    const u64 uni_cycles =
        wl::DvmWorkload(dvm).run(uni).cycles.totalExcludingIo().count();
    core::SmpSystem smp(SystemConfig::forModel(GetParam()), 4);
    const u64 smp_cycles =
        wl::DvmWorkload(dvm).run(smp).cycles.totalExcludingIo().count();
    EXPECT_GT(smp_cycles, uni_cycles);
}

INSTANTIATE_TEST_SUITE_P(Models, SmpTest,
                         ::testing::Values(ModelKind::Plb,
                                           ModelKind::PageGroup,
                                           ModelKind::Conventional),
                         modelName);
