/**
 * @file
 * Behavioural tests for the page-group system: the PA-RISC-style
 * claims of Sections 3.2.2, 4.1 and 4.2.
 */

#include <gtest/gtest.h>

#include "core/system.hh"

using namespace sasos;
using namespace sasos::core;

class PgSystemTest : public ::testing::Test
{
  protected:
    PgSystemTest() : sys_(SystemConfig::pageGroupSystem())
    {
        a_ = sys_.kernel().createDomain("a");
        b_ = sys_.kernel().createDomain("b");
    }

    vm::SegmentId
    makeSegment(u64 pages, vm::Access a_rights, vm::Access b_rights)
    {
        const vm::SegmentId seg = sys_.kernel().createSegment("seg", pages);
        if (a_rights != vm::Access::None)
            sys_.kernel().attach(a_, seg, a_rights);
        if (b_rights != vm::Access::None)
            sys_.kernel().attach(b_, seg, b_rights);
        return seg;
    }

    vm::VAddr
    baseOf(vm::SegmentId seg)
    {
        return sys_.state().segments.find(seg)->base();
    }

    PageGroupSystem &model() { return *sys_.pageGroupSystem(); }

    core::System sys_;
    os::DomainId a_ = 0;
    os::DomainId b_ = 0;
};

TEST_F(PgSystemTest, SharedPageUsesOneTlbEntry)
{
    // The model's headline advantage over the PLB: no replication.
    const vm::SegmentId seg =
        makeSegment(1, vm::Access::ReadWrite, vm::Access::Read);
    const vm::VAddr base = baseOf(seg);
    sys_.kernel().switchTo(a_);
    sys_.load(base);
    sys_.kernel().switchTo(b_);
    sys_.load(base);
    EXPECT_EQ(model().tlb().occupancy(), 1u);
}

TEST_F(PgSystemTest, ReadOnlyDomainDeniedWriteViaDBit)
{
    const vm::SegmentId seg =
        makeSegment(1, vm::Access::ReadWrite, vm::Access::Read);
    const vm::VAddr base = baseOf(seg);
    sys_.kernel().switchTo(b_);
    EXPECT_TRUE(sys_.load(base));
    EXPECT_FALSE(sys_.store(base));
    sys_.kernel().switchTo(a_);
    EXPECT_TRUE(sys_.store(base));
}

TEST_F(PgSystemTest, DomainSwitchPurgesPageGroupCache)
{
    // Section 4.1.4: switching purges the page-group cache; entries
    // fault back in lazily.
    const vm::SegmentId seg =
        makeSegment(1, vm::Access::ReadWrite, vm::Access::ReadWrite);
    const vm::VAddr base = baseOf(seg);
    sys_.kernel().switchTo(a_);
    sys_.load(base);
    EXPECT_GT(model().pageGroupCache().occupancy(), 0u);
    sys_.kernel().switchTo(b_);
    EXPECT_EQ(model().pageGroupCache().occupancy(), 0u);
    const u64 refills_before = model().pgCacheRefills.value();
    sys_.load(base);
    EXPECT_EQ(model().pgCacheRefills.value(), refills_before + 1);
}

TEST_F(PgSystemTest, EagerReloadFillsCacheOnSwitch)
{
    SystemConfig config = SystemConfig::pageGroupSystem();
    config.eagerPgReload = true;
    core::System sys(config);
    auto &kernel = sys.kernel();
    const os::DomainId a = kernel.createDomain("a");
    const os::DomainId b = kernel.createDomain("b");
    const vm::SegmentId seg = kernel.createSegment("s", 1);
    kernel.attach(a, seg, vm::Access::ReadWrite);
    kernel.attach(b, seg, vm::Access::ReadWrite);
    const vm::VAddr base = sys.state().segments.find(seg)->base();
    kernel.switchTo(a);
    sys.load(base);

    kernel.switchTo(b);
    EXPECT_GT(sys.pageGroupSystem()->eagerReloads.value(), 0u);
    // No page-group refill fault on first access.
    const u64 refills = sys.pageGroupSystem()->pgCacheRefills.value();
    sys.load(base);
    EXPECT_EQ(sys.pageGroupSystem()->pgCacheRefills.value(), refills);
}

TEST_F(PgSystemTest, AttachDoesNotTouchPerPageState)
{
    // Table 1 Attach: O(1), just a group id for the domain.
    const vm::SegmentId seg =
        makeSegment(64, vm::Access::ReadWrite, vm::Access::None);
    sys_.touchRange(baseOf(seg), 64 * vm::kPageBytes);
    const u64 tlb_purged = model().tlb().purgedEntries.value();
    const u64 kernel_work_before =
        sys_.account().byCategory(CostCategory::KernelWork).count();
    sys_.kernel().attach(b_, seg, vm::Access::ReadWrite);
    // No TLB purge, only constant work.
    EXPECT_EQ(model().tlb().purgedEntries.value(), tlb_purged);
    const u64 work =
        sys_.account().byCategory(CostCategory::KernelWork).count() -
        kernel_work_before;
    EXPECT_LT(work, 64u); // independent of the 64 pages... but see
                          // checkUnionChanged below for union growth
}

TEST_F(PgSystemTest, DetachRemovesGroupFromCurrentDomainCache)
{
    const vm::SegmentId seg =
        makeSegment(4, vm::Access::ReadWrite, vm::Access::None);
    const vm::VAddr base = baseOf(seg);
    sys_.kernel().switchTo(a_);
    sys_.load(base);
    EXPECT_GT(model().pageGroupCache().occupancy(), 0u);
    sys_.kernel().detach(a_, seg);
    EXPECT_EQ(model().pageGroupCache().occupancy(), 0u);
    EXPECT_FALSE(sys_.load(base));
}

TEST_F(PgSystemTest, PerDomainRightsChangeSplitsGroup)
{
    // Section 4.1.2: granting one domain different rights to a page
    // in a shared segment requires another page-group.
    const vm::SegmentId seg =
        makeSegment(4, vm::Access::ReadWrite, vm::Access::ReadWrite);
    const vm::VAddr base = baseOf(seg);
    sys_.kernel().switchTo(a_);
    sys_.touchRange(base, 4 * vm::kPageBytes);

    const u64 splits_before = model().manager().splits.value();
    sys_.kernel().setPageRights(a_, vm::pageOf(base), vm::Access::Read);
    EXPECT_EQ(model().manager().splits.value(), splits_before + 1);

    // Enforcement: a can no longer write that page but can write the
    // segment's other pages; b is unaffected.
    EXPECT_FALSE(sys_.store(base));
    EXPECT_TRUE(sys_.store(base + vm::kPageBytes));
    sys_.kernel().switchTo(b_);
    EXPECT_TRUE(sys_.store(base));
}

TEST_F(PgSystemTest, UniformAllDomainChangeUsesOneTlbUpdate)
{
    // Section 4.1.2: "if the rights are being changed for all domains
    // ... the change is easily made in a single TLB entry."
    const vm::SegmentId seg =
        makeSegment(2, vm::Access::ReadWrite, vm::Access::ReadWrite);
    const vm::VAddr base = baseOf(seg);
    sys_.kernel().switchTo(a_);
    sys_.load(base);
    const u64 scans_before = model().tlb().purgedEntries.value();
    sys_.kernel().restrictPage(vm::pageOf(base), vm::Access::None);
    // One entry rewritten; nothing scanned or purged.
    EXPECT_EQ(model().tlb().purgedEntries.value(), scans_before);
    EXPECT_FALSE(sys_.load(base));
}

TEST_F(PgSystemTest, InexpressibleVectorAlternates)
{
    // {a: R, b: W}: the page hops between a-favoring and b-favoring
    // groups as each domain faults -- the paper's alternation
    // pathology for shared locks.
    const vm::SegmentId seg = sys_.kernel().createSegment("s", 1);
    sys_.kernel().attach(a_, seg, vm::Access::Read);
    sys_.kernel().attach(b_, seg, vm::Access::Write);
    const vm::VAddr base = baseOf(seg);

    sys_.kernel().switchTo(a_);
    EXPECT_TRUE(sys_.load(base));
    sys_.kernel().switchTo(b_);
    EXPECT_TRUE(sys_.store(base));
    sys_.kernel().switchTo(a_);
    EXPECT_TRUE(sys_.load(base));
    EXPECT_GE(model().manager().alternations.value(), 2u);
    EXPECT_GE(sys_.kernel().staleFaults.value(), 2u);
}

TEST_F(PgSystemTest, UnionGrowthPurgesStaleTlbRights)
{
    // When a new attach raises the group's Rights union, cached TLB
    // entries are purged so the new union can be observed -- and
    // write access genuinely works afterward.
    const vm::SegmentId seg =
        makeSegment(2, vm::Access::Read, vm::Access::None);
    const vm::VAddr base = baseOf(seg);
    sys_.kernel().switchTo(a_);
    sys_.load(base);
    const u64 purges_before = model().unionPurges.value();
    sys_.kernel().attach(b_, seg, vm::Access::ReadWrite);
    EXPECT_GT(model().unionPurges.value(), purges_before);
    sys_.kernel().switchTo(b_);
    EXPECT_TRUE(sys_.store(base));
    // And a still cannot write.
    sys_.kernel().switchTo(a_);
    EXPECT_FALSE(sys_.store(base));
}

TEST_F(PgSystemTest, SegmentRightsDropEnforced)
{
    const vm::SegmentId seg =
        makeSegment(2, vm::Access::ReadWrite, vm::Access::ReadWrite);
    const vm::VAddr base = baseOf(seg);
    sys_.kernel().switchTo(a_);
    sys_.store(base);
    sys_.kernel().setSegmentRights(a_, seg, vm::Access::Read);
    EXPECT_FALSE(sys_.store(base));
    EXPECT_TRUE(sys_.load(base));
    sys_.kernel().switchTo(b_);
    EXPECT_TRUE(sys_.store(base));
}

TEST_F(PgSystemTest, PagerExclusionMovesPageToPrivateGroup)
{
    // Table 1 paging rows: pages move to the paging server's group.
    const vm::SegmentId seg =
        makeSegment(2, vm::Access::ReadWrite, vm::Access::None);
    const vm::VAddr base = baseOf(seg);
    const os::DomainId pager = sys_.kernel().createDomain("pager");
    sys_.kernel().attach(pager, seg, vm::Access::ReadWrite);
    sys_.kernel().switchTo(a_);
    sys_.store(base);

    const u64 moves_before = model().manager().pageMoves.value();
    sys_.kernel().restrictPage(vm::pageOf(base), vm::Access::None, pager);
    EXPECT_GT(model().manager().pageMoves.value(), moves_before);
    EXPECT_FALSE(sys_.load(base));
    sys_.kernel().switchTo(pager);
    EXPECT_TRUE(sys_.store(base));
}

TEST_F(PgSystemTest, FourPidRegisterVariantThrashesWithManySegments)
{
    // The original PA-RISC has four PID registers; a domain touching
    // more than four segments misses on every rotation.
    SystemConfig config = SystemConfig::pidRegisterSystem();
    core::System sys(config);
    auto &kernel = sys.kernel();
    const os::DomainId d = kernel.createDomain("d");
    std::vector<vm::VAddr> bases;
    for (int s = 0; s < 8; ++s) {
        const vm::SegmentId seg =
            kernel.createSegment("s" + std::to_string(s), 1);
        kernel.attach(d, seg, vm::Access::ReadWrite);
        bases.push_back(sys.state().segments.find(seg)->base());
    }
    // Warm everything once.
    for (const vm::VAddr base : bases)
        sys.load(base);
    const u64 refills_before =
        sys.pageGroupSystem()->pgCacheRefills.value();
    for (int round = 0; round < 4; ++round) {
        for (const vm::VAddr base : bases)
            sys.load(base);
    }
    // 8 live groups in 4 registers: refills keep coming.
    EXPECT_GT(sys.pageGroupSystem()->pgCacheRefills.value(),
              refills_before + 8);
}

TEST_F(PgSystemTest, EffectiveRightsNeverExceedCanonical)
{
    const vm::SegmentId seg =
        makeSegment(4, vm::Access::ReadWrite, vm::Access::Read);
    const vm::Vpn first = sys_.state().segments.find(seg)->firstPage;
    sys_.kernel().setPageRights(a_, first, vm::Access::Read);
    sys_.kernel().setPageRights(b_, first + 1, vm::Access::None);
    for (u64 p = 0; p < 4; ++p) {
        for (os::DomainId d : {a_, b_}) {
            const vm::Access hw = model().effectiveRights(d, first + p);
            const vm::Access canonical =
                sys_.kernel().canonicalRights(d, first + p);
            EXPECT_TRUE(vm::includes(canonical, hw))
                << "domain " << d << " page " << p;
        }
    }
}

TEST_F(PgSystemTest, SegmentDestructionReleasesGroups)
{
    const vm::SegmentId seg =
        makeSegment(2, vm::Access::ReadWrite, vm::Access::ReadWrite);
    const vm::VAddr base = baseOf(seg);
    sys_.kernel().switchTo(a_);
    sys_.load(base);
    sys_.kernel().setPageRights(a_, vm::pageOf(base), vm::Access::Read);
    EXPECT_GT(model().manager().liveGroups(), 0u);
    sys_.kernel().destroySegment(seg);
    EXPECT_EQ(model().manager().liveGroups(), 0u);
}
