/**
 * @file
 * Tests for the TLB's three personalities and the page-group cache.
 */

#include <gtest/gtest.h>

#include "hw/pagegroup_cache.hh"
#include "hw/tlb.hh"
#include "sim/stats.hh"

using namespace sasos;
using namespace sasos::hw;

namespace
{

TlbConfig
smallTlb(TlbKind kind, std::size_t ways = 8, std::size_t sets = 1)
{
    TlbConfig config;
    config.kind = kind;
    config.sets = sets;
    config.ways = ways;
    return config;
}

TlbEntry
entryFor(u64 pfn, vm::Access rights = vm::Access::ReadWrite,
         DomainId asid = 0, GroupId aid = kGlobalGroup)
{
    TlbEntry entry;
    entry.pfn = vm::Pfn(pfn);
    entry.rights = rights;
    entry.asid = asid;
    entry.aid = aid;
    return entry;
}

} // namespace

TEST(TlbTest, MissThenHit)
{
    stats::Group root("t");
    Tlb tlb(smallTlb(TlbKind::TranslationOnly), &root);
    EXPECT_EQ(tlb.lookup(vm::Vpn(5)), nullptr);
    tlb.insert(vm::Vpn(5), entryFor(50));
    TlbEntry *entry = tlb.lookup(vm::Vpn(5));
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->pfn, vm::Pfn(50));
    EXPECT_EQ(tlb.hits.value(), 1u);
    EXPECT_EQ(tlb.misses.value(), 1u);
}

TEST(TlbTest, TranslationOnlyIgnoresAsid)
{
    stats::Group root("t");
    Tlb tlb(smallTlb(TlbKind::TranslationOnly), &root);
    tlb.insert(vm::Vpn(5), entryFor(50));
    // Any domain sees the single shared translation.
    EXPECT_NE(tlb.lookup(vm::Vpn(5), 1), nullptr);
    EXPECT_NE(tlb.lookup(vm::Vpn(5), 2), nullptr);
    EXPECT_EQ(tlb.occupancy(), 1u);
}

TEST(TlbTest, ConventionalReplicatesPerAsid)
{
    // Section 3.1: sharing replicates TLB entries per domain even
    // though the translation is identical.
    stats::Group root("t");
    Tlb tlb(smallTlb(TlbKind::Conventional), &root);
    tlb.insert(vm::Vpn(5), entryFor(50, vm::Access::ReadWrite, 1));
    EXPECT_EQ(tlb.lookup(vm::Vpn(5), 2), nullptr); // other domain misses
    tlb.insert(vm::Vpn(5), entryFor(50, vm::Access::Read, 2));
    EXPECT_EQ(tlb.occupancy(), 2u); // two replicas for one page

    EXPECT_EQ(tlb.lookup(vm::Vpn(5), 1)->rights, vm::Access::ReadWrite);
    EXPECT_EQ(tlb.lookup(vm::Vpn(5), 2)->rights, vm::Access::Read);
}

TEST(TlbTest, PageGroupSingleEntryPerPage)
{
    stats::Group root("t");
    Tlb tlb(smallTlb(TlbKind::PageGroup), &root);
    tlb.insert(vm::Vpn(5), entryFor(50, vm::Access::ReadWrite, 0, 7));
    TlbEntry *entry = tlb.lookup(vm::Vpn(5), 99); // asid irrelevant
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->aid, 7);
    EXPECT_EQ(tlb.occupancy(), 1u);
}

TEST(TlbTest, SetRightsInPlace)
{
    stats::Group root("t");
    Tlb tlb(smallTlb(TlbKind::Conventional), &root);
    tlb.insert(vm::Vpn(5), entryFor(50, vm::Access::ReadWrite, 3));
    EXPECT_TRUE(tlb.setRights(vm::Vpn(5), vm::Access::Read, 3));
    EXPECT_EQ(tlb.peek(vm::Vpn(5), 3)->rights, vm::Access::Read);
    EXPECT_FALSE(tlb.setRights(vm::Vpn(6), vm::Access::Read, 3));
}

TEST(TlbTest, SetGroupMovesPage)
{
    stats::Group root("t");
    Tlb tlb(smallTlb(TlbKind::PageGroup), &root);
    tlb.insert(vm::Vpn(5), entryFor(50, vm::Access::ReadWrite, 0, 7));
    EXPECT_TRUE(tlb.setGroup(vm::Vpn(5), 9, vm::Access::Read));
    const TlbEntry *entry = tlb.peek(vm::Vpn(5));
    EXPECT_EQ(entry->aid, 9);
    EXPECT_EQ(entry->rights, vm::Access::Read);
}

TEST(TlbTest, PurgePageDropsAllReplicas)
{
    stats::Group root("t");
    Tlb tlb(smallTlb(TlbKind::Conventional), &root);
    tlb.insert(vm::Vpn(5), entryFor(50, vm::Access::Read, 1));
    tlb.insert(vm::Vpn(5), entryFor(50, vm::Access::Read, 2));
    tlb.insert(vm::Vpn(6), entryFor(60, vm::Access::Read, 1));
    EXPECT_EQ(tlb.purgePage(vm::Vpn(5)), 2u);
    EXPECT_EQ(tlb.occupancy(), 1u);
    EXPECT_NE(tlb.peek(vm::Vpn(6), 1), nullptr);
}

TEST(TlbTest, PurgePageAsidDropsOneReplica)
{
    stats::Group root("t");
    Tlb tlb(smallTlb(TlbKind::Conventional), &root);
    tlb.insert(vm::Vpn(5), entryFor(50, vm::Access::Read, 1));
    tlb.insert(vm::Vpn(5), entryFor(50, vm::Access::Read, 2));
    EXPECT_TRUE(tlb.purgePageAsid(vm::Vpn(5), 1));
    EXPECT_EQ(tlb.peek(vm::Vpn(5), 1), nullptr);
    EXPECT_NE(tlb.peek(vm::Vpn(5), 2), nullptr);
}

TEST(TlbTest, PurgeAsidScansWholeTlb)
{
    stats::Group root("t");
    Tlb tlb(smallTlb(TlbKind::Conventional), &root);
    tlb.insert(vm::Vpn(1), entryFor(10, vm::Access::Read, 1));
    tlb.insert(vm::Vpn(2), entryFor(20, vm::Access::Read, 1));
    tlb.insert(vm::Vpn(3), entryFor(30, vm::Access::Read, 2));
    const PurgeResult result = tlb.purgeAsid(1);
    EXPECT_EQ(result.scanned, tlb.capacity());
    EXPECT_EQ(result.invalidated, 2u);
    EXPECT_EQ(tlb.occupancy(), 1u);
}

TEST(TlbTest, PurgeRangeRespectsAsidFilter)
{
    stats::Group root("t");
    Tlb tlb(smallTlb(TlbKind::Conventional), &root);
    tlb.insert(vm::Vpn(10), entryFor(1, vm::Access::Read, 1));
    tlb.insert(vm::Vpn(11), entryFor(2, vm::Access::Read, 2));
    tlb.insert(vm::Vpn(20), entryFor(3, vm::Access::Read, 1));
    const PurgeResult result = tlb.purgeRange(DomainId{1}, vm::Vpn(10), 5);
    EXPECT_EQ(result.invalidated, 1u);
    EXPECT_EQ(tlb.peek(vm::Vpn(11), 2)->pfn, vm::Pfn(2));
    EXPECT_NE(tlb.peek(vm::Vpn(20), 1), nullptr);
}

TEST(TlbTest, PurgeRangeAllAsids)
{
    stats::Group root("t");
    Tlb tlb(smallTlb(TlbKind::Conventional), &root);
    tlb.insert(vm::Vpn(10), entryFor(1, vm::Access::Read, 1));
    tlb.insert(vm::Vpn(11), entryFor(2, vm::Access::Read, 2));
    const PurgeResult result =
        tlb.purgeRange(std::nullopt, vm::Vpn(10), 5);
    EXPECT_EQ(result.invalidated, 2u);
}

TEST(TlbTest, PurgeAllFlashInvalidates)
{
    stats::Group root("t");
    Tlb tlb(smallTlb(TlbKind::TranslationOnly), &root);
    tlb.insert(vm::Vpn(1), entryFor(1));
    tlb.insert(vm::Vpn(2), entryFor(2));
    EXPECT_EQ(tlb.purgeAll(), 2u);
    EXPECT_EQ(tlb.occupancy(), 0u);
    EXPECT_EQ(tlb.purgedEntries.value(), 2u);
}

TEST(TlbTest, EvictionWhenFull)
{
    stats::Group root("t");
    Tlb tlb(smallTlb(TlbKind::TranslationOnly, 2), &root);
    tlb.insert(vm::Vpn(1), entryFor(1));
    tlb.insert(vm::Vpn(2), entryFor(2));
    tlb.lookup(vm::Vpn(1)); // 2 becomes LRU
    tlb.insert(vm::Vpn(3), entryFor(3));
    EXPECT_EQ(tlb.evictions.value(), 1u);
    EXPECT_EQ(tlb.peek(vm::Vpn(2)), nullptr);
    EXPECT_NE(tlb.peek(vm::Vpn(1)), nullptr);
}

TEST(TlbTest, SetAssociativeIndexing)
{
    stats::Group root("t");
    Tlb tlb(smallTlb(TlbKind::TranslationOnly, 2, 4), &root);
    // Pages 0 and 4 map to set 0; 1 maps to set 1.
    tlb.insert(vm::Vpn(0), entryFor(10));
    tlb.insert(vm::Vpn(4), entryFor(11));
    tlb.insert(vm::Vpn(1), entryFor(12));
    EXPECT_NE(tlb.peek(vm::Vpn(0)), nullptr);
    EXPECT_NE(tlb.peek(vm::Vpn(4)), nullptr);
    EXPECT_NE(tlb.peek(vm::Vpn(1)), nullptr);
    // A third conflicting page evicts within set 0 only.
    tlb.insert(vm::Vpn(8), entryFor(13));
    EXPECT_EQ(tlb.occupancy(), 3u);
    EXPECT_NE(tlb.peek(vm::Vpn(1)), nullptr);
}

TEST(TlbTest, ForEachVisitsEntries)
{
    stats::Group root("t");
    Tlb tlb(smallTlb(TlbKind::Conventional), &root);
    tlb.insert(vm::Vpn(1), entryFor(1, vm::Access::Read, 1));
    tlb.insert(vm::Vpn(2), entryFor(2, vm::Access::Read, 2));
    int count = 0;
    tlb.forEach([&](vm::Vpn, DomainId, TlbEntry &) { ++count; });
    EXPECT_EQ(count, 2);
}

// ---------------------------------------------------------------------
// Page-group cache

TEST(PageGroupCacheTest, GlobalGroupAlwaysHits)
{
    stats::Group root("t");
    PageGroupCache cache(PageGroupCacheConfig{4}, &root);
    auto match = cache.lookup(kGlobalGroup);
    ASSERT_TRUE(match.has_value());
    EXPECT_FALSE(match->writeDisable);
    EXPECT_EQ(cache.globalHits.value(), 1u);
}

TEST(PageGroupCacheTest, MissThenInsertThenHit)
{
    stats::Group root("t");
    PageGroupCache cache(PageGroupCacheConfig{4}, &root);
    EXPECT_FALSE(cache.lookup(7).has_value());
    cache.insert(7, true);
    auto match = cache.lookup(7);
    ASSERT_TRUE(match.has_value());
    EXPECT_TRUE(match->writeDisable);
}

TEST(PageGroupCacheTest, InsertUpdatesDBitInPlace)
{
    stats::Group root("t");
    PageGroupCache cache(PageGroupCacheConfig{4}, &root);
    cache.insert(7, false);
    cache.insert(7, true);
    EXPECT_EQ(cache.occupancy(), 1u);
    EXPECT_TRUE(cache.peek(7)->writeDisable);
}

TEST(PageGroupCacheTest, LruEvictionAtCapacity)
{
    stats::Group root("t");
    PageGroupCache cache(PageGroupCacheConfig{2, PolicyKind::Lru}, &root);
    cache.insert(1);
    cache.insert(2);
    cache.lookup(1); // 2 is LRU
    cache.insert(3);
    EXPECT_FALSE(cache.peek(2).has_value());
    EXPECT_TRUE(cache.peek(1).has_value());
    EXPECT_EQ(cache.evictions.value(), 1u);
}

TEST(PageGroupCacheTest, RemoveAndPurge)
{
    stats::Group root("t");
    PageGroupCache cache(PageGroupCacheConfig{4}, &root);
    cache.insert(1);
    cache.insert(2);
    EXPECT_TRUE(cache.remove(1));
    EXPECT_FALSE(cache.remove(1));
    EXPECT_EQ(cache.purgeAll(), 1u);
    EXPECT_EQ(cache.occupancy(), 0u);
}

TEST(PageGroupCacheTest, LoadAllStopsAtCapacity)
{
    stats::Group root("t");
    PageGroupCache cache(PageGroupCacheConfig{2}, &root);
    const GroupId groups[] = {1, 2, 3, 4};
    EXPECT_EQ(cache.loadAll(groups), 2u);
    EXPECT_EQ(cache.occupancy(), 2u);
}

TEST(PageGroupCacheTest, LoadAllSkipsGlobalGroup)
{
    stats::Group root("t");
    PageGroupCache cache(PageGroupCacheConfig{4}, &root);
    const GroupId groups[] = {kGlobalGroup, 5};
    EXPECT_EQ(cache.loadAll(groups), 1u);
    EXPECT_TRUE(cache.peek(5).has_value());
}

TEST(PageGroupCacheTest, FourRegisterVariant)
{
    // The original PA-RISC: four PID registers, no useful replacement
    // information (Random policy stands in for an uninformed OS).
    stats::Group root("t");
    PageGroupCache regs(PageGroupCacheConfig{4, PolicyKind::Random, 9},
                        &root);
    for (GroupId g = 1; g <= 4; ++g)
        regs.insert(g);
    EXPECT_EQ(regs.occupancy(), 4u);
    regs.insert(5);
    EXPECT_EQ(regs.occupancy(), 4u); // one of them was displaced
}
