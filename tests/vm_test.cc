/**
 * @file
 * Unit tests for the vm substrate: addresses, rights, segments, the
 * global page table (no-homonym/no-synonym invariants), protection
 * tables, frame allocation and the linear-page-table space model.
 */

#include <gtest/gtest.h>

#include "vm/address.hh"
#include "vm/linear_page_table.hh"
#include "vm/page_table.hh"
#include "vm/phys_mem.hh"
#include "vm/prot_table.hh"
#include "vm/rights.hh"
#include "vm/segment.hh"

using namespace sasos;
using namespace sasos::vm;

TEST(AddressTest, PageDecomposition)
{
    const VAddr va(0x12345678);
    EXPECT_EQ(pageOf(va).number(), 0x12345u);
    EXPECT_EQ(offsetOf(va), 0x678u);
    EXPECT_EQ(baseOf(pageOf(va)).raw(), 0x12345000u);
}

TEST(AddressTest, TranslateCombinesFrameAndOffset)
{
    const VAddr va(0xABC123);
    const Pfn pfn(0x77);
    EXPECT_EQ(translate(va, pfn).raw(), (0x77ull << 12) | 0x123u);
}

TEST(AddressTest, CustomPageShift)
{
    const VAddr va(0x10000);
    EXPECT_EQ(pageOf(va, 16).number(), 1u);
    EXPECT_EQ(offsetOf(va, 16), 0u);
}

TEST(AddressTest, StrongTypesCompare)
{
    EXPECT_LT(Vpn(1), Vpn(2));
    EXPECT_EQ(VAddr(5) + 3, VAddr(8));
    EXPECT_EQ(Vpn(5) + 2, Vpn(7));
}

TEST(RightsTest, IncludesChecksSubsets)
{
    EXPECT_TRUE(includes(Access::ReadWrite, Access::Read));
    EXPECT_TRUE(includes(Access::ReadWrite, Access::Write));
    EXPECT_FALSE(includes(Access::Read, Access::Write));
    EXPECT_TRUE(includes(Access::All, Access::ReadWrite));
    EXPECT_TRUE(includes(Access::None, Access::None));
    EXPECT_FALSE(includes(Access::None, Access::Read));
}

TEST(RightsTest, RequiredRightPerAccessType)
{
    EXPECT_EQ(requiredRight(AccessType::Load), Access::Read);
    EXPECT_EQ(requiredRight(AccessType::Store), Access::Write);
    EXPECT_EQ(requiredRight(AccessType::IFetch), Access::Execute);
}

TEST(RightsTest, OperatorsComposeAndMask)
{
    EXPECT_EQ(Access::Read | Access::Write, Access::ReadWrite);
    EXPECT_EQ(Access::ReadWrite & Access::Read, Access::Read);
    EXPECT_EQ(Access::ReadWrite & ~Access::Write, Access::Read);
    EXPECT_EQ(~Access::None, Access::All);
}

TEST(RightsTest, ToStringRendering)
{
    EXPECT_EQ(toString(Access::None), "---");
    EXPECT_EQ(toString(Access::ReadWrite), "rw-");
    EXPECT_EQ(toString(Access::All), "rwx");
    EXPECT_EQ(toString(Access::ReadExecute), "r-x");
}

TEST(SegmentTest, CreationAssignsDisjointRanges)
{
    SegmentTable table;
    const SegmentId a = table.create("a", 10);
    const SegmentId b = table.create("b", 20);
    const Segment *sa = table.find(a);
    const Segment *sb = table.find(b);
    ASSERT_NE(sa, nullptr);
    ASSERT_NE(sb, nullptr);
    // Ranges must not overlap.
    EXPECT_TRUE(sa->lastPage() < sb->firstPage ||
                sb->lastPage() < sa->firstPage);
}

TEST(SegmentTest, AddressesNeverReused)
{
    SegmentTable table;
    const SegmentId a = table.create("a", 16);
    const Vpn first_a = table.find(a)->firstPage;
    table.destroy(a);
    const SegmentId b = table.create("b", 16);
    // The new segment must not reuse the retired range.
    EXPECT_GT(table.find(b)->firstPage.number(), first_a.number());
}

TEST(SegmentTest, FindByPage)
{
    SegmentTable table;
    const SegmentId a = table.create("a", 4);
    const Segment *seg = table.find(a);
    EXPECT_EQ(table.findByPage(seg->firstPage), seg);
    EXPECT_EQ(table.findByPage(seg->lastPage()), seg);
    EXPECT_EQ(table.findByPage(Vpn(seg->lastPage().number() + 1)), nullptr);
    EXPECT_EQ(table.findByPage(Vpn(0)), nullptr);
}

TEST(SegmentTest, FindByPageAfterDestroy)
{
    SegmentTable table;
    const SegmentId a = table.create("a", 4);
    const Vpn page = table.find(a)->firstPage;
    table.destroy(a);
    EXPECT_EQ(table.findByPage(page), nullptr);
    EXPECT_EQ(table.find(a), nullptr);
}

TEST(SegmentTest, PowerOfTwoAlignment)
{
    SegmentTable table;
    table.create("pad", 3); // misalign the allocator
    const SegmentId s = table.create("aligned", 16, true);
    const Segment *seg = table.find(s);
    EXPECT_TRUE(seg->isPowerOfTwoAligned());
    EXPECT_EQ(seg->firstPage.number() % 16, 0u);
}

TEST(SegmentTest, NonPow2SizeNeverAligned)
{
    SegmentTable table;
    const SegmentId s = table.create("odd", 12, true);
    EXPECT_FALSE(table.find(s)->isPowerOfTwoAligned());
}

TEST(SegmentTest, ContainsChecksBounds)
{
    SegmentTable table;
    const Segment *seg = table.find(table.create("s", 2));
    EXPECT_TRUE(seg->contains(seg->base()));
    EXPECT_TRUE(seg->contains(seg->base() + (2 * kPageBytes - 1)));
    EXPECT_FALSE(seg->contains(seg->base() + 2 * kPageBytes));
}

TEST(SegmentTest, LiveIdsTracksCreationAndDestruction)
{
    SegmentTable table;
    const SegmentId a = table.create("a", 1);
    const SegmentId b = table.create("b", 1);
    EXPECT_EQ(table.liveIds().size(), 2u);
    table.destroy(a);
    const auto live = table.liveIds();
    ASSERT_EQ(live.size(), 1u);
    EXPECT_EQ(live[0], b);
}

TEST(FrameAllocatorTest, AllocateAndFree)
{
    FrameAllocator frames(4);
    EXPECT_EQ(frames.capacity(), 4u);
    auto f0 = frames.allocate();
    ASSERT_TRUE(f0.has_value());
    EXPECT_TRUE(frames.isAllocated(*f0));
    EXPECT_EQ(frames.inUse(), 1u);
    frames.free(*f0);
    EXPECT_FALSE(frames.isAllocated(*f0));
    EXPECT_EQ(frames.inUse(), 0u);
}

TEST(FrameAllocatorTest, ExhaustionReturnsNullopt)
{
    FrameAllocator frames(2);
    EXPECT_TRUE(frames.allocate().has_value());
    EXPECT_TRUE(frames.allocate().has_value());
    EXPECT_FALSE(frames.allocate().has_value());
}

TEST(FrameAllocatorTest, FramesAreRecycled)
{
    FrameAllocator frames(1);
    const Pfn f = *frames.allocate();
    frames.free(f);
    EXPECT_EQ(frames.allocate(), f);
}

TEST(FrameAllocatorDeathTest, DoubleFreePanics)
{
    FrameAllocator frames(2);
    const Pfn f = *frames.allocate();
    frames.free(f);
    EXPECT_DEATH(frames.free(f), "double free");
}

TEST(FrameAllocatorTest, RefcountsTrackSharers)
{
    FrameAllocator frames(4);
    const Pfn f = *frames.allocate();
    EXPECT_EQ(frames.refCount(f), 1u);
    frames.ref(f);
    frames.ref(f);
    EXPECT_EQ(frames.refCount(f), 3u);
    // Dropping sharers keeps the frame allocated until the last one.
    frames.unref(f);
    frames.unref(f);
    EXPECT_EQ(frames.refCount(f), 1u);
    EXPECT_TRUE(frames.isAllocated(f));
    EXPECT_EQ(frames.inUse(), 1u);
    frames.unref(f);
    EXPECT_FALSE(frames.isAllocated(f));
    EXPECT_EQ(frames.refCount(f), 0u);
    EXPECT_EQ(frames.inUse(), 0u);
}

TEST(FrameAllocatorTest, UnrefOfLastReferenceRecyclesTheFrame)
{
    FrameAllocator frames(1);
    const Pfn f = *frames.allocate();
    frames.ref(f);
    EXPECT_FALSE(frames.allocate().has_value());
    frames.unref(f);
    frames.unref(f);
    EXPECT_EQ(frames.allocate(), f);
}

TEST(FrameAllocatorDeathTest, ExclusiveFreeOfSharedFramePanics)
{
    FrameAllocator frames(2);
    const Pfn f = *frames.allocate();
    frames.ref(f);
    // free() is the exclusive-owner form; shared frames must go
    // through unref().
    EXPECT_DEATH(frames.free(f), "freeing shared frame");
}

TEST(FrameAllocatorDeathTest, RefOfUnallocatedFramePanics)
{
    FrameAllocator frames(2);
    const Pfn f = *frames.allocate();
    frames.free(f);
    EXPECT_DEATH(frames.ref(f), "ref of unallocated frame");
}

TEST(PageTableTest, MapLookupUnmap)
{
    GlobalPageTable table;
    table.map(Vpn(10), Pfn(3));
    const Translation *t = table.lookup(Vpn(10));
    ASSERT_NE(t, nullptr);
    EXPECT_EQ(t->pfn, Pfn(3));
    EXPECT_FALSE(t->dirty);
    EXPECT_EQ(table.unmap(Vpn(10)), Pfn(3));
    EXPECT_EQ(table.lookup(Vpn(10)), nullptr);
}

TEST(PageTableTest, ReverseMapTracksFrames)
{
    GlobalPageTable table;
    table.map(Vpn(10), Pfn(3));
    EXPECT_EQ(table.pageOfFrame(Pfn(3)), Vpn(10));
    EXPECT_EQ(table.pageOfFrame(Pfn(4)), std::nullopt);
    table.unmap(Vpn(10));
    EXPECT_EQ(table.pageOfFrame(Pfn(3)), std::nullopt);
}

TEST(PageTableDeathTest, HomonymForbidden)
{
    GlobalPageTable table;
    table.map(Vpn(10), Pfn(3));
    // A second translation for the same virtual page can never exist
    // in a single address space system.
    EXPECT_DEATH(table.map(Vpn(10), Pfn(4)), "homonym");
}

TEST(PageTableDeathTest, SynonymForbidden)
{
    GlobalPageTable table;
    table.map(Vpn(10), Pfn(3));
    // Nor can one frame back two virtual pages.
    EXPECT_DEATH(table.map(Vpn(11), Pfn(3)), "synonym");
}

TEST(PageTableTest, MapSharedRelaxesTheSynonymRule)
{
    GlobalPageTable table;
    table.map(Vpn(10), Pfn(3));
    // CoW sharing: the same frame may back further pages...
    table.mapShared(Vpn(11), Pfn(3));
    table.mapShared(Vpn(12), Pfn(3));
    EXPECT_EQ(table.frameMappers(Pfn(3)), 3u);
    EXPECT_EQ(table.lookup(Vpn(11))->pfn, Pfn(3));
    // The reverse map reports the lowest mapping page, and unmapping
    // sharers peels them off one at a time.
    EXPECT_EQ(table.pageOfFrame(Pfn(3)), Vpn(10));
    EXPECT_EQ(table.unmap(Vpn(10)), Pfn(3));
    EXPECT_EQ(table.pageOfFrame(Pfn(3)), Vpn(11));
    EXPECT_EQ(table.frameMappers(Pfn(3)), 2u);
    table.unmap(Vpn(11));
    table.unmap(Vpn(12));
    EXPECT_EQ(table.frameMappers(Pfn(3)), 0u);
    EXPECT_EQ(table.pageOfFrame(Pfn(3)), std::nullopt);
}

TEST(PageTableDeathTest, MapSharedRequiresAMappedFrame)
{
    GlobalPageTable table;
    // Sharing only relaxes an existing mapping; a fresh frame must be
    // installed with map().
    EXPECT_DEATH(table.mapShared(Vpn(10), Pfn(3)), "sharing unmapped frame");
}

TEST(PageTableDeathTest, MapSharedStillForbidsHomonyms)
{
    GlobalPageTable table;
    table.map(Vpn(10), Pfn(3));
    table.mapShared(Vpn(11), Pfn(3));
    EXPECT_DEATH(table.mapShared(Vpn(11), Pfn(3)), "homonym");
}

TEST(PageTableTest, UsageBits)
{
    GlobalPageTable table;
    table.map(Vpn(1), Pfn(1));
    table.markReferenced(Vpn(1));
    EXPECT_TRUE(table.lookup(Vpn(1))->referenced);
    EXPECT_FALSE(table.lookup(Vpn(1))->dirty);
    table.markDirty(Vpn(1));
    EXPECT_TRUE(table.lookup(Vpn(1))->dirty);
    table.clearUsage(Vpn(1));
    EXPECT_FALSE(table.lookup(Vpn(1))->referenced);
    EXPECT_FALSE(table.lookup(Vpn(1))->dirty);
}

TEST(PageTableTest, ForEachVisitsAllMappings)
{
    GlobalPageTable table;
    table.map(Vpn(1), Pfn(10));
    table.map(Vpn(2), Pfn(11));
    int seen = 0;
    table.forEach([&](Vpn, const Translation &) { ++seen; });
    EXPECT_EQ(seen, 2);
    EXPECT_EQ(table.size(), 2u);
}

class ProtTableTest : public ::testing::Test
{
  protected:
    ProtTableTest()
    {
        seg_ = segments_.create("seg", 8);
        other_ = segments_.create("other", 8);
    }

    SegmentTable segments_;
    SegmentId seg_;
    SegmentId other_;
    ProtectionTable prot_;
};

TEST_F(ProtTableTest, UnattachedIsNone)
{
    const Vpn page = segments_.find(seg_)->firstPage;
    EXPECT_EQ(prot_.effectiveRights(page, segments_), Access::None);
}

TEST_F(ProtTableTest, SegmentGrantApplies)
{
    prot_.attachSegment(seg_, Access::ReadWrite);
    const Vpn page = segments_.find(seg_)->firstPage;
    EXPECT_EQ(prot_.effectiveRights(page, segments_), Access::ReadWrite);
    // But not to other segments.
    const Vpn other_page = segments_.find(other_)->firstPage;
    EXPECT_EQ(prot_.effectiveRights(other_page, segments_), Access::None);
}

TEST_F(ProtTableTest, PageOverrideWins)
{
    prot_.attachSegment(seg_, Access::ReadWrite);
    const Vpn page = segments_.find(seg_)->firstPage;
    prot_.setPageRights(page, Access::Read);
    EXPECT_EQ(prot_.effectiveRights(page, segments_), Access::Read);
    // Neighbouring pages keep the grant.
    EXPECT_EQ(prot_.effectiveRights(page + 1, segments_),
              Access::ReadWrite);
    prot_.clearPageRights(page);
    EXPECT_EQ(prot_.effectiveRights(page, segments_), Access::ReadWrite);
}

TEST_F(ProtTableTest, OverrideCanDenyEntirely)
{
    prot_.attachSegment(seg_, Access::ReadWrite);
    const Vpn page = segments_.find(seg_)->firstPage;
    prot_.setPageRights(page, Access::None);
    EXPECT_EQ(prot_.effectiveRights(page, segments_), Access::None);
    EXPECT_TRUE(prot_.hasPageOverride(page));
}

TEST_F(ProtTableTest, DetachDropsGrantAndOverrides)
{
    prot_.attachSegment(seg_, Access::ReadWrite);
    const Segment *seg = segments_.find(seg_);
    prot_.setPageRights(seg->firstPage, Access::Read);
    prot_.setPageRights(seg->firstPage + 1, Access::None);
    const u64 removed = prot_.detachSegment(*seg);
    EXPECT_EQ(removed, 3u); // grant + 2 overrides
    EXPECT_FALSE(prot_.isAttached(seg_));
    EXPECT_EQ(prot_.effectiveRights(seg->firstPage, segments_),
              Access::None);
    EXPECT_EQ(prot_.pageOverrides(), 0u);
}

TEST_F(ProtTableTest, SetSegmentRightsReplacesGrant)
{
    prot_.attachSegment(seg_, Access::ReadWrite);
    prot_.setSegmentRights(seg_, Access::Read);
    EXPECT_EQ(prot_.segmentRights(seg_), Access::Read);
}

TEST_F(ProtTableTest, AttachedSegmentIds)
{
    prot_.attachSegment(seg_, Access::Read);
    prot_.attachSegment(other_, Access::ReadWrite);
    auto ids = prot_.attachedSegmentIds();
    std::sort(ids.begin(), ids.end());
    EXPECT_EQ(ids, (std::vector<SegmentId>{seg_, other_}));
}

TEST_F(ProtTableTest, SpaceAccountsEntries)
{
    prot_.attachSegment(seg_, Access::Read);
    prot_.setPageRights(segments_.find(seg_)->firstPage, Access::None);
    EXPECT_EQ(prot_.spaceBytes(16), 2u * 16u);
}

TEST(LinearPageTableTest, EmptyCostsNothing)
{
    LinearPageTableModel model;
    EXPECT_EQ(model.flatBytes(), 0u);
    EXPECT_EQ(model.twoLevelBytes(), 0u);
}

TEST(LinearPageTableTest, FlatSpansMinToMax)
{
    LinearPageTableModel model(8);
    model.addRange(Vpn(100), 1);
    model.addRange(Vpn(1000), 1);
    // Span = 901 pages even though only 2 are mapped: the sparsity
    // problem of Section 3.1.
    EXPECT_EQ(model.flatBytes(), 901u * 8u);
    EXPECT_EQ(model.denseBytes(), 2u * 8u);
}

TEST(LinearPageTableTest, TwoLevelOnlyAllocatesTouchedLeaves)
{
    LinearPageTableModel model(8, 12); // 512 PTEs per 4K leaf
    model.addRange(Vpn(0), 1);
    model.addRange(Vpn(512 * 100), 1); // a distant leaf
    // Two leaves + a directory spanning 101 leaf slots.
    EXPECT_EQ(model.twoLevelBytes(), 2u * 4096u + 101u * 8u);
}

TEST(LinearPageTableTest, SparseIsWorseThanDense)
{
    LinearPageTableModel sparse(8);
    for (int i = 0; i < 10; ++i)
        sparse.addRange(Vpn(static_cast<u64>(i) * 100000), 16);
    EXPECT_GT(sparse.flatBytes(), 100u * sparse.denseBytes());
}

TEST(LinearPageTableTest, MappedPagesDeduplicates)
{
    LinearPageTableModel model;
    model.addRange(Vpn(5), 4);
    model.addRange(Vpn(7), 4); // overlaps two pages
    EXPECT_EQ(model.mappedPages(), 6u);
}
