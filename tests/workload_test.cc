/**
 * @file
 * Integration tests: every application workload runs on every
 * protection model, completes, and exhibits the dynamics the paper
 * attributes to it. Also checks determinism (same seed, same cycles).
 */

#include <gtest/gtest.h>

#include "core/system.hh"
#include "workload/address_stream.hh"
#include "workload/attach_churn.hh"
#include "workload/checkpoint.hh"
#include "workload/comppage.hh"
#include "workload/dvm.hh"
#include "workload/gc.hh"
#include "workload/rpc.hh"
#include "workload/sharing.hh"
#include "workload/txvm.hh"

using namespace sasos;
using namespace sasos::core;

namespace
{

const char *
modelName(const ::testing::TestParamInfo<ModelKind> &info)
{
    switch (info.param) {
      case ModelKind::Plb:
        return "plb";
      case ModelKind::PageGroup:
        return "pg";
      default:
        return "conv";
    }
}

} // namespace

// ---------------------------------------------------------------------
// Address streams

TEST(AddressStreamTest, SequentialWrapsAround)
{
    Rng rng(1);
    wl::SequentialStream stream(vm::VAddr(0x1000), 32, 8);
    EXPECT_EQ(stream.next(rng).raw(), 0x1000u);
    EXPECT_EQ(stream.next(rng).raw(), 0x1008u);
    for (int i = 0; i < 2; ++i)
        stream.next(rng);
    EXPECT_EQ(stream.next(rng).raw(), 0x1000u); // wrapped
}

TEST(AddressStreamTest, UniformStaysInRange)
{
    Rng rng(2);
    wl::UniformStream stream(vm::VAddr(0x1000), 0x2000);
    for (int i = 0; i < 1000; ++i) {
        const u64 raw = stream.next(rng).raw();
        EXPECT_GE(raw, 0x1000u);
        EXPECT_LT(raw, 0x3000u);
        EXPECT_EQ(raw % 8, 0u);
    }
}

TEST(AddressStreamTest, ZipfConcentratesOnHotPages)
{
    Rng rng(3);
    wl::ZipfPageStream stream(vm::VAddr(0), 64, 1.0, 55);
    std::map<u64, int> page_counts;
    for (int i = 0; i < 20000; ++i)
        ++page_counts[stream.next(rng).raw() / vm::kPageBytes];
    // The hottest page should dominate the coldest by a wide margin.
    int max_count = 0, min_count = 1 << 30;
    for (const auto &[page, count] : page_counts) {
        max_count = std::max(max_count, count);
        min_count = std::min(min_count, count);
    }
    EXPECT_GT(max_count, 10 * std::max(min_count, 1));
}

TEST(AddressStreamTest, WorkingSetConfinesReferences)
{
    Rng rng(4);
    wl::WorkingSetStream stream(vm::VAddr(0), 1024, 4, 100);
    std::set<u64> pages;
    for (int i = 0; i < 100; ++i)
        pages.insert(stream.next(rng).raw() / vm::kPageBytes);
    EXPECT_LE(pages.size(), 4u); // one phase: at most ws pages
}

// ---------------------------------------------------------------------
// Workloads x models

class WorkloadModelTest : public ::testing::TestWithParam<ModelKind>
{
  protected:
    SystemConfig
    config() const
    {
        return SystemConfig::forModel(GetParam());
    }
};

TEST_P(WorkloadModelTest, RpcCompletesAndSwitches)
{
    core::System sys(config());
    wl::RpcConfig rpc_config;
    rpc_config.calls = 50;
    const wl::RpcResult result = wl::RpcWorkload(rpc_config).run(sys);
    EXPECT_EQ(result.calls, 50u);
    EXPECT_GE(result.domainSwitches, 2 * result.calls - 1);
    EXPECT_GT(result.cyclesPerCall(), 0.0);
    EXPECT_EQ(sys.failedReferences.value(), 0u);
}

TEST_P(WorkloadModelTest, AttachChurnCompletesCleanly)
{
    core::System sys(config());
    wl::AttachChurnConfig churn_config;
    churn_config.episodes = 30;
    const wl::AttachChurnResult result =
        wl::AttachChurnWorkload(churn_config).run(sys);
    EXPECT_EQ(result.episodes, 30u);
    EXPECT_EQ(sys.failedReferences.value(), 0u);
    EXPECT_EQ(sys.kernel().attaches.value(), 30u);
    EXPECT_EQ(sys.kernel().detaches.value(), 30u);
}

TEST_P(WorkloadModelTest, SharingCompletes)
{
    core::System sys(config());
    wl::SharingConfig sharing_config;
    sharing_config.quanta = 40;
    sharing_config.refsPerQuantum = 50;
    const wl::SharingResult result =
        wl::SharingWorkload(sharing_config).run(sys);
    EXPECT_EQ(result.references, 40u * 50u);
    EXPECT_EQ(sys.failedReferences.value(), 0u);
    EXPECT_GT(result.occupancyEntries, 0u);
}

TEST_P(WorkloadModelTest, GcScansEveryTouchedPageExactlyOnce)
{
    core::System sys(config());
    wl::GcConfig gc_config;
    gc_config.collections = 3;
    gc_config.spacePages = 16;
    gc_config.allocsPerCollection = 64;
    const wl::GcResult result = wl::GcWorkload(gc_config).run(sys);
    EXPECT_EQ(result.flips, 3u);
    // Each flip forces at most spacePages scans; with refs spread
    // over the space, nearly all pages fault once per collection.
    EXPECT_GT(result.scanFaults, 0u);
    EXPECT_LE(result.scanFaults, 3u * 16u);
    EXPECT_EQ(sys.failedReferences.value(), 0u);
}

TEST_P(WorkloadModelTest, DvmEpisodesBalance)
{
    core::System sys(config());
    wl::DvmConfig dvm_config;
    dvm_config.quanta = 40;
    dvm_config.refsPerQuantum = 40;
    const wl::DvmResult result = wl::DvmWorkload(dvm_config).run(sys);
    EXPECT_GT(result.readFaults, 0u);
    EXPECT_GT(result.writeFaults, 0u);
    // Invalidations only happen when a writer displaces readers.
    EXPECT_LE(result.invalidations,
              result.writeFaults * dvm_config.nodes);
    EXPECT_EQ(sys.failedReferences.value(), 0u);
}

TEST_P(WorkloadModelTest, TxvmCommitsRequested)
{
    core::System sys(config());
    wl::TxvmConfig tx_config;
    tx_config.commits = 20;
    const wl::TxvmResult result = wl::TxvmWorkload(tx_config).run(sys);
    EXPECT_EQ(result.commits, 20u);
    EXPECT_GT(result.lockReadGrants + result.lockWriteGrants, 0u);
    // Aborted references are the only legitimate failures.
    EXPECT_EQ(sys.failedReferences.value(), result.aborts);
}

TEST_P(WorkloadModelTest, CheckpointsCoverAllPages)
{
    core::System sys(config());
    wl::CheckpointConfig ckpt_config;
    ckpt_config.checkpoints = 2;
    ckpt_config.dataPages = 32;
    ckpt_config.refsBetween = 500;
    const wl::CheckpointResult result =
        wl::CheckpointWorkload(ckpt_config).run(sys);
    EXPECT_EQ(result.checkpoints, 2u);
    // Every page is checkpointed exactly once per checkpoint, either
    // by a copy-on-write fault or by the sweeper.
    EXPECT_EQ(result.copyOnWriteFaults + result.sweptPages, 2u * 32u);
    EXPECT_GT(result.copyOnWriteFaults, 0u);
    EXPECT_EQ(sys.failedReferences.value(), 0u);
}

TEST_P(WorkloadModelTest, CompressionPagingPagesInAndOut)
{
    SystemConfig sys_config = config();
    wl::CompPageConfig cp_config;
    cp_config.dataPages = 64;
    cp_config.frames = 32;
    cp_config.references = 3000;
    sys_config.frames = cp_config.frames;
    core::System sys(sys_config);
    const wl::CompPageResult result =
        wl::CompPageWorkload(cp_config).run(sys);
    EXPECT_GT(result.pageOuts, 0u);
    EXPECT_GT(result.pageIns, 0u);
    EXPECT_EQ(sys.failedReferences.value(), 0u);
    EXPECT_LE(sys.state().frameAllocator.inUse(), cp_config.frames);
}

TEST_P(WorkloadModelTest, DeterministicAcrossRuns)
{
    // Every workload must give bit-identical cycle totals for the
    // same seed and configuration.
    auto run_all = [&](core::System &sys) {
        u64 total = 0;
        {
            wl::RpcConfig c;
            c.calls = 20;
            total += wl::RpcWorkload(c).run(sys).cycles.total().count();
        }
        {
            wl::DvmConfig c;
            c.quanta = 20;
            total += wl::DvmWorkload(c).run(sys).cycles.total().count();
        }
        {
            wl::TxvmConfig c;
            c.commits = 8;
            total += wl::TxvmWorkload(c).run(sys).cycles.total().count();
        }
        {
            wl::GcConfig c;
            c.collections = 2;
            c.spacePages = 8;
            c.allocsPerCollection = 16;
            total += wl::GcWorkload(c).run(sys).cycles.total().count();
        }
        {
            wl::SharingConfig c;
            c.quanta = 12;
            c.protChangePeriod = 3;
            total +=
                wl::SharingWorkload(c).run(sys).cycles.total().count();
        }
        {
            wl::CheckpointConfig c;
            c.checkpoints = 1;
            c.dataPages = 8;
            c.refsBetween = 100;
            total += wl::CheckpointWorkload(c)
                         .run(sys)
                         .cycles.total()
                         .count();
        }
        return total;
    };
    u64 first_cycles = 0;
    for (int run = 0; run < 2; ++run) {
        core::System sys(config());
        const u64 total = run_all(sys);
        if (run == 0)
            first_cycles = total;
        else
            EXPECT_EQ(total, first_cycles);
    }
}

TEST(ModelContrastTest, SameReferencesFailOnEveryModel)
{
    // The *set* of canonically denied references is a property of the
    // kernel state, not of the protection hardware: replaying one
    // deterministic scenario on each machine must fail the same
    // references. (TxVM aborts are the scenario: lock conflicts.)
    wl::TxvmConfig tx_config;
    tx_config.commits = 25;
    tx_config.theta = 0.9; // high contention -> aborts
    std::vector<u64> fails;
    for (ModelKind kind : {ModelKind::Plb, ModelKind::PageGroup,
                           ModelKind::Conventional}) {
        core::System sys(SystemConfig::forModel(kind));
        const wl::TxvmResult result =
            wl::TxvmWorkload(tx_config).run(sys);
        fails.push_back(result.aborts);
        EXPECT_EQ(sys.failedReferences.value(), result.aborts);
    }
    EXPECT_EQ(fails[0], fails[1]);
    EXPECT_EQ(fails[1], fails[2]);
}

INSTANTIATE_TEST_SUITE_P(Models, WorkloadModelTest,
                         ::testing::Values(ModelKind::Plb,
                                           ModelKind::PageGroup,
                                           ModelKind::Conventional),
                         modelName);

// ---------------------------------------------------------------------
// Model-contrast assertions: the paper's qualitative predictions.

TEST(ModelContrastTest, PlbSharingReplicatesButPageGroupDoesNot)
{
    wl::SharingConfig sharing_config;
    sharing_config.domains = 6;
    sharing_config.sharedSegments = 2;
    sharing_config.sharedPages = 16;
    sharing_config.quanta = 60;
    sharing_config.sharedFraction = 1.0;
    sharing_config.privatePages = 1;

    SystemConfig plb_config = SystemConfig::plbSystem();
    plb_config.superPagePlb = false;
    plb_config.plb.sizeShifts = {vm::kPageShift};
    core::System plb_sys(plb_config);
    const wl::SharingResult plb_result =
        wl::SharingWorkload(sharing_config).run(plb_sys);

    core::System pg_sys(SystemConfig::pageGroupSystem());
    const wl::SharingResult pg_result =
        wl::SharingWorkload(sharing_config).run(pg_sys);

    // Section 4: the PLB holds one entry per (domain, page); the
    // page-group TLB holds one per page.
    EXPECT_GT(plb_result.occupancyEntries,
              2 * pg_result.occupancyEntries / 2);
    EXPECT_GT(plb_result.occupancyEntries, pg_result.occupancyEntries);
}

TEST(ModelContrastTest, PurgingConventionalPaysMoreForSwitches)
{
    wl::RpcConfig rpc_config;
    rpc_config.calls = 100;

    core::System asid_sys(SystemConfig::conventionalSystem());
    const wl::RpcResult asid =
        wl::RpcWorkload(rpc_config).run(asid_sys);

    core::System purge_sys(SystemConfig::purgingConventionalSystem());
    const wl::RpcResult purge =
        wl::RpcWorkload(rpc_config).run(purge_sys);

    EXPECT_GT(purge.cyclesPerCall(), asid.cyclesPerCall());
}

TEST(ModelContrastTest, PageGroupSplitsOnlyUnderPerDomainChanges)
{
    // Static sharing: no splits. Transactional locking: splits.
    wl::SharingConfig static_config;
    static_config.quanta = 40;
    static_config.protChangePeriod = 0;
    core::System static_sys(SystemConfig::pageGroupSystem());
    wl::SharingWorkload(static_config).run(static_sys);
    EXPECT_EQ(static_sys.pageGroupSystem()->manager().splits.value(), 0u);

    wl::TxvmConfig tx_config;
    tx_config.commits = 20;
    core::System tx_sys(SystemConfig::pageGroupSystem());
    wl::TxvmWorkload(tx_config).run(tx_sys);
    EXPECT_GT(tx_sys.pageGroupSystem()->manager().splits.value(), 0u);
}

TEST(ModelContrastTest, GcFlipCheaperOnPageGroupModel)
{
    // Table 1 flip: page-group swaps group ids (O(1)); the PLB model
    // scans. Compare kernel work during the whole GC run.
    wl::GcConfig gc_config;
    gc_config.collections = 4;
    gc_config.spacePages = 32;

    core::System plb_sys(SystemConfig::plbSystem());
    const wl::GcResult plb = wl::GcWorkload(gc_config).run(plb_sys);

    core::System pg_sys(SystemConfig::pageGroupSystem());
    const wl::GcResult pg = wl::GcWorkload(gc_config).run(pg_sys);

    EXPECT_LT(pg.flipCycles, plb.flipCycles);
}
