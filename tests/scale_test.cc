/**
 * @file
 * The datacenter-scale engine's test suite (src/scale/ and the
 * clustered-PLB / coalesced-IPI machinery underneath it).
 *
 * Four pillars:
 *
 *  - ClusterPlb unit tests: VPN-range routing, the exactness of the
 *    L2 directory through every entry birth and death, directory-
 *    driven bank skipping, and the snapshot geometry guard.
 *  - Determinism and equivalence at scale: clustered-vs-flat decision
 *    identity, a 256-core explorer run bit-identical at host thread
 *    counts 1 and 4, mid-storm snapshot/restore resume equivalence,
 *    and the coalesced-vs-uncoalesced shootdown-stats reconciliation
 *    (the stale window may differ; the delivered-purge set may not).
 *  - Config death tests for the new engine knobs (cores=, mc_quantum=,
 *    mc_ipi_delay=, mc_coalesce=, plb_clusters=, plb_range_shift=).
 *  - Population: the analytic space report cross-checked entry for
 *    entry against the real vm::ProtectionTable and
 *    vm::LinearPageTableModel at small N, plus the segment-allocator
 *    stress invariants and the farm's adaptive checkpoint cadence.
 */

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/mc/explorer.hh"
#include "core/mc/mc_system.hh"
#include "farm/coordinator.hh"
#include "hw/cluster_plb.hh"
#include "scale/population.hh"
#include "scale/storm.hh"
#include "snap/snapshot.hh"
#include "vm/linear_page_table.hh"
#include "vm/prot_table.hh"

using namespace sasos;
namespace mc = sasos::core::mc;

namespace
{

/** SASOS_FATAL rerouted into a catchable exception, per test scope. */
struct FatalRejection : std::runtime_error
{
    explicit FatalRejection(const std::string &message)
        : std::runtime_error(message)
    {
    }
};

class ScopedFatalThrow
{
  public:
    ScopedFatalThrow()
    {
        previous_ = setFatalHandler([](const std::string &message) -> void {
            throw FatalRejection(message);
        });
    }
    ~ScopedFatalThrow() { setFatalHandler(previous_); }

  private:
    FatalHandler previous_;
};

/** Expect `fn` to die with a fatal whose message contains `needle`. */
template <typename Fn>
void
expectFatalContaining(Fn fn, const std::string &needle)
{
    ScopedFatalThrow reroute;
    try {
        fn();
        FAIL() << "expected a fatal containing \"" << needle << "\"";
    } catch (const FatalRejection &fatal) {
        EXPECT_NE(std::string(fatal.what()).find(needle),
                  std::string::npos)
            << "fatal message was: " << fatal.what();
    }
}

hw::PlbConfig
clusterConfig(unsigned clusters, std::size_t ways, int range_shift)
{
    hw::PlbConfig config;
    config.ways = ways;
    config.clusters = clusters;
    config.rangeShift = range_shift;
    config.sizeShifts = {vm::kPageShift};
    return config;
}

vm::VAddr
pageVa(u64 vpn)
{
    return vm::baseOf(vm::Vpn(vpn));
}

/** Recompute the directory from the banks and compare. */
void
expectDirectoryExact(const hw::ClusterPlb &plb)
{
    std::map<u64, u32> expect;
    plb.forEach([&](hw::DomainId, vm::VAddr va, int, vm::Access) {
        ++expect[(va.raw() >> vm::kPageShift) >> plb.config().rangeShift];
    });
    EXPECT_EQ(plb.liveRanges(), expect.size());
    std::size_t occupancy = 0;
    for (const auto &[range, count] : expect) {
        occupancy += count;
        // Every live range must answer a countRange over its span.
        const vm::Vpn first(range << plb.config().rangeShift);
        EXPECT_EQ(plb.countRange(std::nullopt, first,
                                 plb.rangePages()),
                  count);
    }
    EXPECT_EQ(plb.occupancy(), occupancy);
}

std::string
dumpOf(mc::McSystem &sys)
{
    std::ostringstream os;
    sys.dumpStats(os);
    return os.str();
}

void
expectSameResult(const mc::McResult &a, const mc::McResult &b)
{
    EXPECT_EQ(a.slots, b.slots);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.failed, b.failed);
    EXPECT_EQ(a.kernelOps, b.kernelOps);
    EXPECT_EQ(a.shootdowns, b.shootdowns);
    EXPECT_EQ(a.acks, b.acks);
    EXPECT_EQ(a.coalescedAcks, b.coalescedAcks);
    EXPECT_EQ(a.staleWindowRefs, b.staleWindowRefs);
    EXPECT_EQ(a.staleGrants, b.staleGrants);
    EXPECT_EQ(a.invariantViolations, b.invariantViolations);
    EXPECT_EQ(a.hwViolations, b.hwViolations);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.coreCycles, b.coreCycles);
    EXPECT_EQ(a.coreCompleted, b.coreCompleted);
    EXPECT_EQ(a.coreFailed, b.coreFailed);
    EXPECT_EQ(a.quiescentOutcomes, b.quiescentOutcomes);
    EXPECT_EQ(a.firstViolation, b.firstViolation);
}

} // namespace

// ---------------------------------------------------------------------
// ClusterPlb: routing and the L2 directory

TEST(ClusterPlbTest, RoutesEntriesByVpnRange)
{
    stats::Group root("t");
    hw::ClusterPlb plb(clusterConfig(4, 32, 2), &root);
    ASSERT_EQ(plb.clusters(), 4u);
    EXPECT_EQ(plb.rangePages(), 4u);
    EXPECT_EQ(plb.capacity(), 32u);

    // Consecutive 4-page ranges rotate across the 4 banks.
    EXPECT_EQ(plb.bankOf(0), 0u);
    EXPECT_EQ(plb.bankOf(3), 0u);
    EXPECT_EQ(plb.bankOf(4), 1u);
    EXPECT_EQ(plb.bankOf(15), 3u);
    EXPECT_EQ(plb.bankOf(16), 0u);

    for (u64 vpn : {u64{0}, u64{5}, u64{10}, u64{15}, u64{16}}) {
        plb.insert(1, pageVa(vpn), vm::kPageShift, vm::Access::Read);
        const unsigned owner = plb.bankOf(vpn);
        EXPECT_TRUE(plb.bank(owner).peek(1, pageVa(vpn)).has_value())
            << "vpn " << vpn;
        for (unsigned b = 0; b < plb.clusters(); ++b)
            if (b != owner)
                EXPECT_FALSE(plb.bank(b).peek(1, pageVa(vpn)).has_value())
                    << "vpn " << vpn << " bank " << b;
    }
    EXPECT_EQ(plb.occupancy(), 5u);
    // Ranges 0,1,2,3 and 4 are live: vpn 16 shares bank 0 with vpn 0
    // but lives in its own range.
    EXPECT_EQ(plb.liveRanges(), 5u);
    expectDirectoryExact(plb);

    // Probes route: a hit in the owning bank, a clean miss elsewhere.
    EXPECT_TRUE(plb.lookup(1, pageVa(5)).has_value());
    EXPECT_FALSE(plb.lookup(1, pageVa(6)).has_value());
    EXPECT_EQ(plb.lookups.value(), 2u);
    EXPECT_EQ(plb.hits.value(), 1u);
    EXPECT_EQ(plb.misses.value(), 1u);
}

TEST(ClusterPlbTest, DirectoryStaysExactThroughMaintenance)
{
    stats::Group root("t");
    hw::ClusterPlb plb(clusterConfig(4, 64, 1), &root);
    Rng rng(7);
    for (u64 i = 0; i < 40; ++i)
        plb.insert(static_cast<hw::DomainId>(1 + (i % 3)),
                   pageVa(rng.nextBelow(64)), vm::kPageShift,
                   vm::Access::ReadWrite);
    expectDirectoryExact(plb);

    plb.purgeRange(std::nullopt, vm::Vpn(8), 12);
    expectDirectoryExact(plb);
    EXPECT_EQ(plb.countRange(std::nullopt, vm::Vpn(8), 12), 0u);

    // A rights-range update at page grain changes rights in place;
    // no entry may die, so the directory must not move.
    const std::size_t before = plb.occupancy();
    plb.updateRightsRange(std::nullopt, vm::Vpn(0), 64,
                          vm::Access::Read);
    EXPECT_EQ(plb.occupancy(), before);
    expectDirectoryExact(plb);

    plb.intersectRightsRange(vm::Vpn(0), 64, vm::Access::Read);
    expectDirectoryExact(plb);

    plb.purgeDomain(2);
    expectDirectoryExact(plb);
    plb.forEach([&](hw::DomainId domain, vm::VAddr, int, vm::Access) {
        EXPECT_NE(domain, 2u);
    });

    while (plb.occupancy() > 5)
        EXPECT_TRUE(plb.evictOne(rng));
    expectDirectoryExact(plb);

    const u64 remaining = plb.occupancy();
    EXPECT_EQ(plb.purgeAll(), remaining);
    EXPECT_EQ(plb.occupancy(), 0u);
    EXPECT_EQ(plb.liveRanges(), 0u);
}

TEST(ClusterPlbTest, DirectorySkipsUntouchedBanks)
{
    // Entries confined to range 0 (bank 0): a scan over a disjoint
    // span must be proven clean by the directory without sweeping.
    stats::Group root("t");
    hw::ClusterPlb plb(clusterConfig(4, 32, 4), &root);
    for (u64 vpn = 0; vpn < 8; ++vpn)
        plb.insert(1, pageVa(vpn), vm::kPageShift, vm::Access::Read);
    ASSERT_EQ(plb.liveRanges(), 1u);

    const hw::PurgeResult miss =
        plb.purgeRange(std::nullopt, vm::Vpn(64), 64);
    EXPECT_EQ(miss.invalidated, 0u);
    EXPECT_EQ(miss.scanned, 0u);
    EXPECT_EQ(plb.dirBankSkips.value(), plb.clusters());
    EXPECT_EQ(plb.dirBankScans.value(), 0u);

    const hw::PurgeResult hit =
        plb.purgeRange(std::nullopt, vm::Vpn(0), 4);
    EXPECT_EQ(hit.invalidated, 4u);
    EXPECT_GT(hit.scanned, 0u);
    EXPECT_EQ(plb.dirBankScans.value(), 1u);
    expectDirectoryExact(plb);
}

TEST(ClusterPlbTest, SaveLoadRebuildsDirectoryAndGuardsGeometry)
{
    stats::Group root("t");
    hw::ClusterPlb plb(clusterConfig(4, 32, 2), &root);
    Rng rng(3);
    for (u64 i = 0; i < 20; ++i)
        plb.insert(1, pageVa(rng.nextBelow(40)), vm::kPageShift,
                   vm::Access::ReadWrite);

    snap::SnapWriter writer;
    plb.save(writer);
    const std::vector<u8> image = writer.seal();

    stats::Group root2("t2");
    hw::ClusterPlb restored(clusterConfig(4, 32, 2), &root2);
    snap::SnapReader reader(image);
    restored.load(reader);
    EXPECT_EQ(restored.occupancy(), plb.occupancy());
    EXPECT_EQ(restored.liveRanges(), plb.liveRanges());
    expectDirectoryExact(restored);
    plb.forEach([&](hw::DomainId domain, vm::VAddr va, int, vm::Access) {
        EXPECT_TRUE(restored.peek(domain, va).has_value());
    });

    stats::Group root3("t3");
    hw::ClusterPlb wrong(clusterConfig(8, 32, 2), &root3);
    snap::SnapReader bad(image);
    expectFatalContaining([&] { wrong.load(bad); },
                          "geometry mismatch");
}

// ---------------------------------------------------------------------
// Flat-vs-clustered decision identity (system level)

TEST(ScaleIdentityTest, ClusteredDecisionsMatchFlatPlb)
{
    for (unsigned cores : {1u, 4u, 16u}) {
        mc::McConfig flat = scale::stormConfig(cores, 120, 11);
        mc::McConfig clustered =
            scale::clusteredStormConfig(cores, 120, 11, 8);
        mc::McSystem flat_sys(flat);
        mc::McSystem cl_sys(clustered);
        const mc::McResult a = flat_sys.run();
        const mc::McResult b = cl_sys.run();
        // The interleaving and all engine-level traffic are
        // organization-independent; so is the quiescent projection.
        EXPECT_EQ(a.slots, b.slots) << cores;
        EXPECT_EQ(a.kernelOps, b.kernelOps) << cores;
        EXPECT_EQ(a.shootdowns, b.shootdowns) << cores;
        EXPECT_EQ(a.acks, b.acks) << cores;
        EXPECT_EQ(a.quiescentOutcomes, b.quiescentOutcomes) << cores;
        EXPECT_EQ(a.invariantViolations + a.hwViolations, 0u) << cores;
        EXPECT_EQ(b.invariantViolations + b.hwViolations, 0u) << cores;
    }
}

TEST(ScaleIdentityTest, ImmediateAckFullVectorMatches)
{
    // With mc_ipi_delay=0 every reference is quiescent, so even the
    // completed/failed totals must agree between organizations.
    mc::McConfig flat = scale::stormConfig(8, 150, 5);
    mc::McConfig clustered = scale::clusteredStormConfig(8, 150, 5, 8);
    flat.ipiDelaySteps = 0;
    clustered.ipiDelaySteps = 0;
    mc::McSystem flat_sys(flat);
    mc::McSystem cl_sys(clustered);
    const mc::McResult a = flat_sys.run();
    const mc::McResult b = cl_sys.run();
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.failed, b.failed);
    EXPECT_EQ(a.quiescentOutcomes, b.quiescentOutcomes);
    EXPECT_EQ(a.quiescentOutcomes.size(),
              static_cast<std::size_t>(a.completed + a.failed));
}

// ---------------------------------------------------------------------
// Determinism at scale

TEST(ScaleDeterminismTest, Explorer256CoresBitIdenticalAcrossThreads)
{
    mc::ExplorerConfig config;
    config.base = scale::clusteredStormConfig(256, 12, 9, 8);
    config.base.coalesceWindow = 4;
    // The per-reference stale-rights invariant stays on inside
    // issueRef(); only the O(cores * pages) quiescence sweep is
    // skipped to keep a 256-core unit test fast.
    config.base.checkInvariants = false;
    config.seeds = 2;
    config.threads = 1;
    const mc::ExplorerResult serial = mc::explore(config);
    config.threads = 4;
    const mc::ExplorerResult threaded = mc::explore(config);

    ASSERT_EQ(serial.runs.size(), threaded.runs.size());
    for (std::size_t i = 0; i < serial.runs.size(); ++i) {
        const mc::RunSummary &a = serial.runs[i];
        const mc::RunSummary &b = threaded.runs[i];
        EXPECT_EQ(a.scheduleSeed, b.scheduleSeed);
        EXPECT_EQ(a.completed, b.completed);
        EXPECT_EQ(a.failed, b.failed);
        EXPECT_EQ(a.shootdowns, b.shootdowns);
        EXPECT_EQ(a.staleWindowRefs, b.staleWindowRefs);
        EXPECT_EQ(a.staleGrants, b.staleGrants);
        EXPECT_EQ(a.cycles, b.cycles);
        EXPECT_EQ(a.quiescentOutcomes, b.quiescentOutcomes);
    }
    EXPECT_EQ(serial.totalViolations, 0u);
    EXPECT_EQ(threaded.totalViolations, 0u);
}

TEST(ScaleDeterminismTest, MidStormSnapshotResumesEquivalently)
{
    mc::McConfig config = scale::clusteredStormConfig(8, 300, 13, 8);
    config.coalesceWindow = 4;

    mc::McSystem straight(config);
    const mc::McResult full = straight.run();
    const std::string fullStats = dumpOf(straight);

    mc::McSystem first(config);
    first.run(120);
    ASSERT_FALSE(first.done())
        << "partial run finished early; shrink max_slots";

    snap::Snapshotter snapper;
    snapper.add(first);
    snap::Restorer restorer(snapper.finish());
    mc::McSystem resumed(config);
    restorer.restore(resumed);
    restorer.finish();

    const mc::McResult continued = resumed.run();
    EXPECT_TRUE(resumed.done());
    expectSameResult(full, continued);
    EXPECT_EQ(fullStats, dumpOf(resumed));
}

TEST(ScaleDeterminismTest, CoalescedStatsReconcileWithUncoalesced)
{
    // Coalescing changes the interleaving (piggy-backed acks skip the
    // dispatch charge), so the two runs are different executions. What
    // must reconcile: every shootdown still collects cores-1 acks,
    // the per-core scripts still execute in full, and nobody violates
    // the stale-rights invariants.
    mc::McConfig base = scale::clusteredStormConfig(16, 150, 17, 8);
    mc::McConfig coalesced = base;
    coalesced.coalesceWindow = 4;

    mc::McSystem plain_sys(base);
    mc::McSystem co_sys(coalesced);
    const mc::McResult plain = plain_sys.run();
    const mc::McResult co = co_sys.run();

    EXPECT_EQ(plain.acks, plain.shootdowns * 15);
    EXPECT_EQ(co.acks, co.shootdowns * 15);
    EXPECT_EQ(plain.coalescedAcks, 0u);
    EXPECT_GT(co.coalescedAcks, 0u);
    EXPECT_LE(co.coalescedAcks, co.acks);
    // Scripts are pre-decided per core: the step mix cannot depend on
    // the interleaving, so the reference and kernel-op totals agree.
    EXPECT_EQ(plain.kernelOps, co.kernelOps);
    EXPECT_EQ(plain.completed + plain.failed, co.completed + co.failed);
    EXPECT_EQ(plain.invariantViolations + plain.hwViolations, 0u);
    EXPECT_EQ(co.invariantViolations + co.hwViolations, 0u);
}

TEST(ScaleDeterminismTest, ZeroCoalesceWindowIsByteIdentical)
{
    // mc_coalesce=0 must leave the engine exactly as it was: same
    // result, same stats dump, against a fresh run of the same seed.
    const mc::McConfig config = scale::clusteredStormConfig(8, 150, 19, 4);
    mc::McSystem a(config);
    mc::McSystem b(config);
    const mc::McResult ra = a.run();
    const mc::McResult rb = b.run();
    expectSameResult(ra, rb);
    EXPECT_EQ(dumpOf(a), dumpOf(b));
}

// ---------------------------------------------------------------------
// Config death tests for the scale knobs

TEST(ScaleConfigTest, CoreCountBoundsAreFatal)
{
    for (const char *bad : {"0", "1025", "4096"}) {
        Options options;
        options.set("cores", bad);
        expectFatalContaining(
            [&] { (void)mc::McConfig::fromOptions(options); },
            "cores must be in [1, 1024]");
    }
    Options ok;
    ok.set("cores", "1024");
    EXPECT_EQ(mc::McConfig::fromOptions(ok).cores, 1024u);
}

TEST(ScaleConfigTest, QuantumAndIpiBoundsAreFatal)
{
    Options zero_quantum;
    zero_quantum.set("mc_quantum", "0");
    expectFatalContaining(
        [&] { (void)mc::McConfig::fromOptions(zero_quantum); },
        "mc_quantum must be in [1,");

    Options big_delay;
    big_delay.set("mc_ipi_delay", "1048577");
    expectFatalContaining(
        [&] { (void)mc::McConfig::fromOptions(big_delay); },
        "mc_ipi_delay must be at most");

    Options big_window;
    big_window.set("mc_coalesce", "1048577");
    expectFatalContaining(
        [&] { (void)mc::McConfig::fromOptions(big_window); },
        "mc_coalesce must be at most");

    Options ok;
    ok.set("mc_coalesce", "4");
    EXPECT_EQ(mc::McConfig::fromOptions(ok).coalesceWindow, 4u);
}

TEST(ScaleConfigTest, PlbClusterBoundsAreFatal)
{
    for (const char *bad : {"0", "257"}) {
        Options options;
        options.set("plb_clusters", bad);
        expectFatalContaining(
            [&] {
                (void)core::SystemConfig::fromOptions(
                    options, core::SystemConfig::plbSystem());
            },
            "plb_clusters must be in [1, 256]");
    }

    Options bad_shift;
    bad_shift.set("plb_range_shift", "29");
    expectFatalContaining(
        [&] {
            (void)core::SystemConfig::fromOptions(
                bad_shift, core::SystemConfig::plbSystem());
        },
        "plb_range_shift must be in [0, 28]");

    // Geometry that leaves a bank with zero ways is a config error.
    Options starved;
    starved.set("plb_clusters", "64");
    starved.set("plbEntries", "32");
    expectFatalContaining(
        [&] {
            (void)core::SystemConfig::fromOptions(
                starved, core::SystemConfig::plbSystem());
        },
        "must be at least plb_clusters");
}

// ---------------------------------------------------------------------
// Population: the analytic report vs the real structures

TEST(PopulationTest, SmallPopulationCrossChecksRealTables)
{
    scale::PopulationConfig config;
    config.domains = 64;
    config.segments = 32;
    config.maxAttach = 6;
    config.maxSegPages = 64;
    config.maxGapPages = 512;
    config.overridePerMille = 300;
    config.seed = 7;
    const scale::Population population(config);
    const scale::SpaceReport report = population.spaceReport();

    u64 prot_bytes = 0;
    u64 flat_bytes = 0;
    u64 two_level_bytes = 0;
    u64 overrides = 0;
    for (u64 d = 0; d < config.domains; ++d) {
        vm::ProtectionTable table;
        population.materialize(d, table);
        prot_bytes += table.spaceBytes(16);
        overrides += table.pageOverrides();

        vm::LinearPageTableModel linear(8);
        for (u64 j = 0; j < population.attachmentCount(d); ++j) {
            const u64 seg = population.attachmentSeg(d, j);
            linear.addRange(population.segmentFirstPage(seg),
                            population.segmentPages(seg));
        }
        flat_bytes += linear.flatBytes();
        two_level_bytes += linear.twoLevelBytes();
    }
    // The analytic accounting and the real structures must agree to
    // the byte: this is what licenses running the report at 10^6
    // domains without materializing a million tables.
    EXPECT_EQ(prot_bytes, report.protectionTableBytes);
    EXPECT_EQ(overrides, report.totalOverrides);
    EXPECT_EQ(flat_bytes, report.linearFlatBytes);
    EXPECT_EQ(two_level_bytes, report.linearTwoLevelBytes);
    EXPECT_EQ(report.sasBytes,
              report.globalPageTableBytes + report.protectionTableBytes);
    EXPECT_GT(report.linearFlatBytes, report.sasBytes);
}

TEST(PopulationTest, PopulationIsDeterministic)
{
    scale::PopulationConfig config;
    config.domains = 500;
    config.segments = 64;
    config.seed = 21;
    const scale::Population a(config);
    const scale::Population b(config);
    const scale::SpaceReport ra = a.spaceReport();
    const scale::SpaceReport rb = b.spaceReport();
    EXPECT_EQ(ra.totalMappedPages, rb.totalMappedPages);
    EXPECT_EQ(ra.totalAttachments, rb.totalAttachments);
    EXPECT_EQ(ra.totalOverrides, rb.totalOverrides);
    EXPECT_EQ(ra.linearFlatBytes, rb.linearFlatBytes);
    EXPECT_EQ(ra.linearTwoLevelBytes, rb.linearTwoLevelBytes);
    for (u64 d = 0; d < config.domains; d += 37) {
        ASSERT_EQ(a.attachmentCount(d), b.attachmentCount(d));
        for (u64 j = 0; j < a.attachmentCount(d); ++j) {
            EXPECT_EQ(a.attachmentSeg(d, j), b.attachmentSeg(d, j));
            EXPECT_EQ(a.attachmentHasOverride(d, j),
                      b.attachmentHasOverride(d, j));
        }
    }
}

TEST(PopulationTest, SegmentAllocatorSurvivesChurn)
{
    const scale::SegmentStressReport report =
        scale::stressSegmentAllocator(3, 4000, 256);
    EXPECT_TRUE(report.passed())
        << report.overlapFailures << " overlap / "
        << report.reuseFailures << " reuse failures";
    EXPECT_GT(report.creates, 0u);
    EXPECT_GT(report.destroys, 0u);
    EXPECT_GT(report.maxLive, 1u);
    EXPECT_EQ(report.creates - report.destroys, report.liveAtEnd);
}

// ---------------------------------------------------------------------
// Farm: the adaptive checkpoint cadence

TEST(FarmAdaptiveTest, CadenceTracksObservedKillRate)
{
    // Disabled checkpointing stays disabled.
    EXPECT_EQ(farm::adaptiveCheckpointEvery(0, 100, 50), 0u);
    // A farm that never loses a worker keeps the sparse base cadence.
    EXPECT_EQ(farm::adaptiveCheckpointEvery(8000, 0, 0), 8000u);
    EXPECT_EQ(farm::adaptiveCheckpointEvery(8000, 500, 0), 8000u);
    // Deaths tighten the cadence monotonically...
    u64 previous = 8000;
    for (u64 deaths = 1; deaths <= 64; deaths *= 2) {
        const u64 every = farm::adaptiveCheckpointEvery(8000, 16, deaths);
        EXPECT_LE(every, previous) << deaths;
        EXPECT_GE(every, 1000u) << deaths; // floor = base/8
        previous = every;
    }
    // ...down to the base/8 floor, never to zero.
    EXPECT_EQ(farm::adaptiveCheckpointEvery(8000, 0, 1000), 1000u);
    EXPECT_EQ(farm::adaptiveCheckpointEvery(4, 0, 1000), 1u);
    // A heavily assigned farm with few deaths barely tightens.
    EXPECT_GT(farm::adaptiveCheckpointEvery(8000, 10000, 1), 7900u);
}

TEST(FarmAdaptiveTest, OptionWiresThrough)
{
    Options options;
    options.set("farm_adaptive", "1");
    options.set("farm_checkpoint_every", "5000");
    const farm::FarmOptions parsed = farm::FarmOptions::fromOptions(options);
    EXPECT_TRUE(parsed.adaptiveCheckpoint);
    EXPECT_EQ(parsed.checkpointEvery, 5000u);
    EXPECT_FALSE(farm::FarmOptions::fromOptions(Options{}).adaptiveCheckpoint);
}
