/**
 * @file
 * Tests for the parallel sweep engine and the batched reference fast
 * path: the thread pool executes everything exactly once, a sweep's
 * simulated results are bit-identical whatever the thread count, and
 * System::run charges exactly the cycles a per-call access() loop
 * would.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <sstream>
#include <vector>

#include "bench_common.hh"
#include "sim/parallel.hh"
#include "sweep_runner.hh"
#include "workload/address_stream.hh"

using namespace sasos;

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.threadCount(), 4u);
    constexpr int kTasks = 200;
    std::vector<std::atomic<int>> runs(kTasks);
    for (int i = 0; i < kTasks; ++i)
        pool.submit([&runs, i] { ++runs[i]; });
    pool.wait();
    for (int i = 0; i < kTasks; ++i)
        EXPECT_EQ(runs[i].load(), 1) << "task " << i;
}

TEST(ThreadPoolTest, WaitWithNothingPendingReturns)
{
    ThreadPool pool(2);
    pool.wait();
    pool.submit([] {});
    pool.wait();
}

TEST(ThreadPoolTest, TasksMaySpawnSubtasks)
{
    ThreadPool pool(3);
    std::atomic<int> total{0};
    for (int i = 0; i < 8; ++i) {
        pool.submit([&pool, &total] {
            ++total;
            for (int j = 0; j < 4; ++j)
                pool.submit([&total] { ++total; });
        });
    }
    pool.wait();
    EXPECT_EQ(total.load(), 8 * 5);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndex)
{
    ThreadPool pool(4);
    constexpr u64 kN = 500;
    std::vector<std::atomic<int>> hits(kN);
    parallelFor(pool, kN, [&](u64 i) { ++hits[i]; });
    for (u64 i = 0; i < kN; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPoolTest, DefaultThreadsIsAtLeastOne)
{
    EXPECT_GE(ThreadPool::defaultThreads(), 1u);
}

TEST(OptionsTest, ThreadsKeyDefaultsToHardwareConcurrency)
{
    Options options;
    EXPECT_EQ(options.threads(), ThreadPool::defaultThreads());
    options.set("threads", "3");
    EXPECT_EQ(options.threads(), 3u);
}

TEST(BenchCommonTest, NormalizedGuardsNonFiniteRatios)
{
    EXPECT_EQ(bench::normalized(5.0, 0.0), "-");
    EXPECT_EQ(bench::normalized(std::numeric_limits<double>::quiet_NaN(),
                                2.0),
              "-");
    EXPECT_EQ(bench::normalized(std::numeric_limits<double>::infinity(),
                                2.0),
              "-");
    EXPECT_EQ(bench::normalized(2.0, 1.0), TextTable::ratio(2.0, 2));
}

namespace
{

/** The acceptance sweep: 3 models x 4 seeds, one zipf stream each. */
std::vector<bench::SweepCell>
testCells()
{
    Options options;
    std::vector<bench::SweepCell> cells;
    for (const auto &model : bench::standardModels(options)) {
        for (u64 seed = 1; seed <= 4; ++seed) {
            bench::SweepCell cell;
            cell.model = model.label;
            cell.workload = "zipf";
            cell.seed = seed;
            cell.config = model.config;
            cell.pages = 64;
            cell.references = 20'000;
            cell.makeStream = [](vm::VAddr base, u64 pages, u64 seed_) {
                return std::make_unique<wl::ZipfPageStream>(base, pages,
                                                            0.8, seed_);
            };
            cells.push_back(std::move(cell));
        }
    }
    return cells;
}

} // namespace

TEST(SweepRunnerTest, ParallelSweepIsBitIdenticalToSerial)
{
    const auto cells = testCells();
    const auto serial = bench::SweepRunner(1).run(cells);
    const auto parallel = bench::SweepRunner(4).run(cells);
    ASSERT_EQ(serial.size(), cells.size());
    ASSERT_EQ(parallel.size(), cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
        EXPECT_EQ(serial[i].model, parallel[i].model) << "cell " << i;
        EXPECT_EQ(serial[i].seed, parallel[i].seed) << "cell " << i;
        EXPECT_EQ(serial[i].simCycles, parallel[i].simCycles)
            << "cell " << i;
        EXPECT_EQ(serial[i].completed, parallel[i].completed)
            << "cell " << i;
        EXPECT_EQ(serial[i].failed, parallel[i].failed) << "cell " << i;
        // The whole stats tree, byte for byte.
        EXPECT_EQ(serial[i].statsDump, parallel[i].statsDump)
            << "cell " << i;
    }
}

TEST(SweepRunnerTest, DistinctSeedsProduceDistinctStreams)
{
    const auto cells = testCells();
    const auto results = bench::SweepRunner(1).run(cells);
    // Same model, different seed: the zipf page shuffle differs, so
    // the simulated cycle totals should too (equality would suggest
    // the seed is ignored).
    EXPECT_NE(results[0].simCycles, results[1].simCycles);
}

namespace
{

struct TwinSystems
{
    explicit TwinSystems(core::ModelKind kind)
        : perCall(core::SystemConfig::forModel(kind)),
          batched(core::SystemConfig::forModel(kind))
    {
        setUp(perCall);
        setUp(batched);
    }

    void
    setUp(core::System &sys)
    {
        const os::DomainId app = sys.kernel().createDomain("app");
        const vm::SegmentId seg = sys.kernel().createSegment("heap", 64);
        sys.kernel().attach(app, seg, vm::Access::ReadWrite);
        sys.kernel().switchTo(app);
        base = sys.state().segments.find(seg)->base();
    }

    std::string
    dump(core::System &sys)
    {
        std::ostringstream os;
        sys.dumpStats(os);
        return os.str();
    }

    core::System perCall;
    core::System batched;
    vm::VAddr base;
};

} // namespace

class BatchedRunTest : public ::testing::TestWithParam<core::ModelKind>
{
};

TEST_P(BatchedRunTest, MatchesPerCallAccessCycleForCycle)
{
    TwinSystems twins(GetParam());
    constexpr u64 kRefs = 30'000;

    // Identical streams and rngs on both sides; the systems start
    // cold, so demand-map translation faults exercise the slow path.
    wl::ZipfPageStream stream_a(twins.base, 64, 0.8, 11);
    wl::ZipfPageStream stream_b(twins.base, 64, 0.8, 11);
    Rng rng_a(11);
    Rng rng_b(11);

    u64 completed_per_call = 0;
    for (u64 i = 0; i < kRefs; ++i)
        completed_per_call += twins.perCall.access(stream_a.next(rng_a),
                                                   vm::AccessType::Load);
    const core::RunResult result =
        twins.batched.run(stream_b, kRefs, rng_b, vm::AccessType::Load);

    EXPECT_EQ(result.completed, completed_per_call);
    EXPECT_EQ(result.completed + result.failed, kRefs);
    EXPECT_EQ(twins.batched.cycles().count(),
              twins.perCall.cycles().count());
    EXPECT_EQ(twins.batched.references.value(),
              twins.perCall.references.value());
    EXPECT_EQ(twins.batched.failedReferences.value(),
              twins.perCall.failedReferences.value());
    EXPECT_EQ(twins.dump(twins.batched), twins.dump(twins.perCall));
}

TEST_P(BatchedRunTest, MatchesPerCallWhenReferencesFail)
{
    // Read-only heap + stores: every reference protection-faults and,
    // with no segment server, becomes an exception -- the batch loop
    // must take the slow path every time and count failures the same.
    core::System per_call(core::SystemConfig::forModel(GetParam()));
    core::System batched(core::SystemConfig::forModel(GetParam()));
    vm::VAddr base;
    for (core::System *sys : {&per_call, &batched}) {
        const os::DomainId app = sys->kernel().createDomain("app");
        const vm::SegmentId seg = sys->kernel().createSegment("ro", 8);
        sys->kernel().attach(app, seg, vm::Access::Read);
        sys->kernel().switchTo(app);
        base = sys->state().segments.find(seg)->base();
    }
    constexpr u64 kRefs = 64;
    wl::SequentialStream stream_a(base, 8 * vm::kPageBytes, 64);
    wl::SequentialStream stream_b(base, 8 * vm::kPageBytes, 64);
    Rng rng_a(3);
    Rng rng_b(3);
    for (u64 i = 0; i < kRefs; ++i)
        per_call.access(stream_a.next(rng_a), vm::AccessType::Store);
    const core::RunResult result =
        batched.run(stream_b, kRefs, rng_b, vm::AccessType::Store);
    EXPECT_EQ(result.failed, kRefs);
    EXPECT_EQ(batched.cycles().count(), per_call.cycles().count());
    EXPECT_EQ(batched.failedReferences.value(),
              per_call.failedReferences.value());
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, BatchedRunTest,
    ::testing::Values(core::ModelKind::Plb, core::ModelKind::PageGroup,
                      core::ModelKind::Conventional),
    [](const ::testing::TestParamInfo<core::ModelKind> &info) {
        switch (info.param) {
          case core::ModelKind::Plb:
            return "plb";
          case core::ModelKind::PageGroup:
            return "pagegroup";
          case core::ModelKind::Conventional:
            return "conventional";
        }
        return "unknown";
    });
