/**
 * @file
 * Tests for the parallel sweep engine and the batched reference fast
 * path: the thread pool executes everything exactly once, a sweep's
 * simulated results are bit-identical whatever the thread count, and
 * System::run charges exactly the cycles a per-call access() loop
 * would.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <memory>
#include <sstream>
#include <vector>

#include "bench_common.hh"
#include "sim/parallel.hh"
#include "farm/campaign.hh"
#include "workload/address_stream.hh"

using namespace sasos;

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.threadCount(), 4u);
    constexpr int kTasks = 200;
    std::vector<std::atomic<int>> runs(kTasks);
    for (int i = 0; i < kTasks; ++i)
        pool.submit([&runs, i] { ++runs[i]; });
    pool.wait();
    for (int i = 0; i < kTasks; ++i)
        EXPECT_EQ(runs[i].load(), 1) << "task " << i;
}

TEST(ThreadPoolTest, WaitWithNothingPendingReturns)
{
    ThreadPool pool(2);
    pool.wait();
    pool.submit([] {});
    pool.wait();
}

TEST(ThreadPoolTest, TasksMaySpawnSubtasks)
{
    ThreadPool pool(3);
    std::atomic<int> total{0};
    for (int i = 0; i < 8; ++i) {
        pool.submit([&pool, &total] {
            ++total;
            for (int j = 0; j < 4; ++j)
                pool.submit([&total] { ++total; });
        });
    }
    pool.wait();
    EXPECT_EQ(total.load(), 8 * 5);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndex)
{
    ThreadPool pool(4);
    constexpr u64 kN = 500;
    std::vector<std::atomic<int>> hits(kN);
    parallelFor(pool, kN, [&](u64 i) { ++hits[i]; });
    for (u64 i = 0; i < kN; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPoolTest, DefaultThreadsIsAtLeastOne)
{
    EXPECT_GE(ThreadPool::defaultThreads(), 1u);
}

TEST(OptionsTest, ThreadsKeyDefaultsToHardwareConcurrency)
{
    Options options;
    EXPECT_EQ(options.threads(), ThreadPool::defaultThreads());
    options.set("threads", "3");
    EXPECT_EQ(options.threads(), 3u);
}

TEST(BenchCommonTest, NormalizedGuardsNonFiniteRatios)
{
    EXPECT_EQ(bench::normalized(5.0, 0.0), "-");
    EXPECT_EQ(bench::normalized(std::numeric_limits<double>::quiet_NaN(),
                                2.0),
              "-");
    EXPECT_EQ(bench::normalized(std::numeric_limits<double>::infinity(),
                                2.0),
              "-");
    EXPECT_EQ(bench::normalized(2.0, 1.0), TextTable::ratio(2.0, 2));
}

namespace
{

/** The acceptance sweep: 3 models x 4 seeds, one zipf stream each. */
std::vector<farm::SweepCell>
testCells()
{
    Options options;
    std::vector<farm::SweepCell> cells;
    for (const auto &model : bench::standardModels(options)) {
        for (u64 seed = 1; seed <= 4; ++seed) {
            farm::SweepCell cell;
            cell.model = model.label;
            cell.workload = "zipf";
            cell.seed = seed;
            cell.config = model.config;
            cell.pages = 64;
            cell.references = 20'000;
            cell.makeStream = [](vm::VAddr base, u64 pages, u64 seed_) {
                return std::make_unique<wl::ZipfPageStream>(base, pages,
                                                            0.8, seed_);
            };
            cells.push_back(std::move(cell));
        }
    }
    return cells;
}

} // namespace

TEST(SweepRunnerTest, ParallelSweepIsBitIdenticalToSerial)
{
    const auto cells = testCells();
    const auto serial = farm::SweepRunner(1).run(cells);
    const auto parallel = farm::SweepRunner(4).run(cells);
    ASSERT_EQ(serial.size(), cells.size());
    ASSERT_EQ(parallel.size(), cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
        EXPECT_EQ(serial[i].model, parallel[i].model) << "cell " << i;
        EXPECT_EQ(serial[i].seed, parallel[i].seed) << "cell " << i;
        EXPECT_EQ(serial[i].simCycles, parallel[i].simCycles)
            << "cell " << i;
        EXPECT_EQ(serial[i].completed, parallel[i].completed)
            << "cell " << i;
        EXPECT_EQ(serial[i].failed, parallel[i].failed) << "cell " << i;
        // The whole stats tree, byte for byte.
        EXPECT_EQ(serial[i].statsDump, parallel[i].statsDump)
            << "cell " << i;
    }
}

TEST(SweepRunnerTest, DistinctSeedsProduceDistinctStreams)
{
    const auto cells = testCells();
    const auto results = farm::SweepRunner(1).run(cells);
    // Same model, different seed: the zipf page shuffle differs, so
    // the simulated cycle totals should too (equality would suggest
    // the seed is ignored).
    EXPECT_NE(results[0].simCycles, results[1].simCycles);
}

namespace
{

struct TwinSystems
{
    explicit TwinSystems(core::ModelKind kind)
        : perCall(core::SystemConfig::forModel(kind)),
          batched(core::SystemConfig::forModel(kind))
    {
        setUp(perCall);
        setUp(batched);
    }

    void
    setUp(core::System &sys)
    {
        const os::DomainId app = sys.kernel().createDomain("app");
        const vm::SegmentId seg = sys.kernel().createSegment("heap", 64);
        sys.kernel().attach(app, seg, vm::Access::ReadWrite);
        sys.kernel().switchTo(app);
        base = sys.state().segments.find(seg)->base();
    }

    std::string
    dump(core::System &sys)
    {
        std::ostringstream os;
        sys.dumpStats(os);
        return os.str();
    }

    core::System perCall;
    core::System batched;
    vm::VAddr base;
};

} // namespace

class BatchedRunTest : public ::testing::TestWithParam<core::ModelKind>
{
};

TEST_P(BatchedRunTest, MatchesPerCallAccessCycleForCycle)
{
    TwinSystems twins(GetParam());
    constexpr u64 kRefs = 30'000;

    // Identical streams and rngs on both sides; the systems start
    // cold, so demand-map translation faults exercise the slow path.
    wl::ZipfPageStream stream_a(twins.base, 64, 0.8, 11);
    wl::ZipfPageStream stream_b(twins.base, 64, 0.8, 11);
    Rng rng_a(11);
    Rng rng_b(11);

    u64 completed_per_call = 0;
    for (u64 i = 0; i < kRefs; ++i)
        completed_per_call += twins.perCall.access(stream_a.next(rng_a),
                                                   vm::AccessType::Load);
    const core::RunResult result =
        twins.batched.run(stream_b, kRefs, rng_b, vm::AccessType::Load);

    EXPECT_EQ(result.completed, completed_per_call);
    EXPECT_EQ(result.completed + result.failed, kRefs);
    EXPECT_EQ(twins.batched.cycles().count(),
              twins.perCall.cycles().count());
    EXPECT_EQ(twins.batched.references.value(),
              twins.perCall.references.value());
    EXPECT_EQ(twins.batched.failedReferences.value(),
              twins.perCall.failedReferences.value());
    EXPECT_EQ(twins.dump(twins.batched), twins.dump(twins.perCall));
}

TEST_P(BatchedRunTest, MatchesPerCallWhenReferencesFail)
{
    // Read-only heap + stores: every reference protection-faults and,
    // with no segment server, becomes an exception -- the batch loop
    // must take the slow path every time and count failures the same.
    core::System per_call(core::SystemConfig::forModel(GetParam()));
    core::System batched(core::SystemConfig::forModel(GetParam()));
    vm::VAddr base;
    for (core::System *sys : {&per_call, &batched}) {
        const os::DomainId app = sys->kernel().createDomain("app");
        const vm::SegmentId seg = sys->kernel().createSegment("ro", 8);
        sys->kernel().attach(app, seg, vm::Access::Read);
        sys->kernel().switchTo(app);
        base = sys->state().segments.find(seg)->base();
    }
    constexpr u64 kRefs = 64;
    wl::SequentialStream stream_a(base, 8 * vm::kPageBytes, 64);
    wl::SequentialStream stream_b(base, 8 * vm::kPageBytes, 64);
    Rng rng_a(3);
    Rng rng_b(3);
    for (u64 i = 0; i < kRefs; ++i)
        per_call.access(stream_a.next(rng_a), vm::AccessType::Store);
    const core::RunResult result =
        batched.run(stream_b, kRefs, rng_b, vm::AccessType::Store);
    EXPECT_EQ(result.failed, kRefs);
    EXPECT_EQ(batched.cycles().count(), per_call.cycles().count());
    EXPECT_EQ(batched.failedReferences.value(),
              per_call.failedReferences.value());
}

namespace
{

/** Replays a fixed address list (wrapping), so a test can plant a
 * faulting reference at an exact batch index. */
class VectorStream : public wl::AddressStream
{
  public:
    explicit VectorStream(std::vector<vm::VAddr> vas)
        : vas_(std::move(vas))
    {
    }

    vm::VAddr
    next(Rng &) override
    {
        const vm::VAddr va = vas_[pos_ % vas_.size()];
        ++pos_;
        return va;
    }

  private:
    std::vector<vm::VAddr> vas_;
    std::size_t pos_ = 0;
};

/** Drive `vas` through both twins -- per-call on one, batched on the
 * other -- and require bit-identical simulated results. */
void
expectTwinsMatch(TwinSystems &twins, const std::vector<vm::VAddr> &vas,
                 vm::AccessType type)
{
    u64 completed_per_call = 0;
    for (const vm::VAddr va : vas)
        completed_per_call += twins.perCall.access(va, type);
    VectorStream stream(vas);
    Rng rng(1);
    const core::RunResult result =
        twins.batched.run(stream, vas.size(), rng, type);
    EXPECT_EQ(result.completed, completed_per_call);
    EXPECT_EQ(twins.batched.cycles().count(),
              twins.perCall.cycles().count());
    EXPECT_EQ(twins.dump(twins.batched), twins.dump(twins.perCall));
}

} // namespace

TEST_P(BatchedRunTest, MatchesPerCallWithFaultAtChunkBoundaries)
{
    // System::run issues 512-reference chunks. A failing reference at
    // index 0 (first of a chunk), 511 (last) and 512 (first of the
    // next chunk) forces the batch driver to flush its accumulator
    // and hand the fault to the kernel at every boundary position;
    // cycles and stats must stay bit-identical to per-call.
    for (const u64 fault_at : {u64{0}, u64{511}, u64{512}}) {
        core::System per_call(core::SystemConfig::forModel(GetParam()));
        core::System batched(core::SystemConfig::forModel(GetParam()));
        vm::VAddr heap{};
        vm::VAddr ro{};
        for (core::System *sys : {&per_call, &batched}) {
            const os::DomainId app = sys->kernel().createDomain("app");
            const vm::SegmentId heap_seg =
                sys->kernel().createSegment("heap", 16);
            const vm::SegmentId ro_seg =
                sys->kernel().createSegment("ro", 4);
            sys->kernel().attach(app, heap_seg, vm::Access::ReadWrite);
            sys->kernel().attach(app, ro_seg, vm::Access::Read);
            sys->kernel().switchTo(app);
            heap = sys->state().segments.find(heap_seg)->base();
            ro = sys->state().segments.find(ro_seg)->base();
        }
        constexpr u64 kRefs = 1024;
        std::vector<vm::VAddr> vas;
        for (u64 i = 0; i < kRefs; ++i)
            vas.push_back(heap + (i % 16) * vm::kPageBytes);
        // A store into the read-only segment: protection fault, no
        // server registered, so the reference becomes an exception.
        vas[fault_at] = ro;

        u64 completed_per_call = 0;
        for (const vm::VAddr va : vas)
            completed_per_call +=
                per_call.access(va, vm::AccessType::Store);
        VectorStream stream(vas);
        Rng rng(1);
        const core::RunResult result =
            batched.run(stream, kRefs, rng, vm::AccessType::Store);

        EXPECT_EQ(result.failed, 1u) << "fault_at " << fault_at;
        EXPECT_EQ(result.completed, completed_per_call)
            << "fault_at " << fault_at;
        EXPECT_EQ(batched.cycles().count(), per_call.cycles().count())
            << "fault_at " << fault_at;
        std::ostringstream dump_b, dump_p;
        batched.dumpStats(dump_b);
        per_call.dumpStats(dump_p);
        EXPECT_EQ(dump_b.str(), dump_p.str()) << "fault_at " << fault_at;
    }
}

namespace
{

/** A server that services a write fault the expensive way: excursion
 * to another domain and back (an RPC), then a rights grant, then
 * retry. Everything the excursion touches -- domain switches, rights
 * changes -- must invalidate the batch driver's coalescing memo. */
class SwitchingServer : public os::SegmentServer
{
  public:
    SwitchingServer(os::DomainId app, os::DomainId server)
        : app_(app), server_(server)
    {
    }

    bool
    onProtectionFault(os::Kernel &kernel, os::DomainId domain,
                      vm::VAddr va, vm::AccessType) override
    {
        kernel.switchTo(server_);
        kernel.setPageRights(domain, vm::pageOf(va),
                             vm::Access::ReadWrite);
        kernel.switchTo(app_);
        return true;
    }

  private:
    os::DomainId app_;
    os::DomainId server_;
};

} // namespace

TEST_P(BatchedRunTest, MatchesPerCallAcrossMidChunkDomainSwitches)
{
    // Same-page stores over a read-only grant: every page's first
    // store faults mid-chunk, the server RPCs to another domain,
    // grants the right and retries. The batch restarts after each
    // excursion with its memo dropped; replaying a pre-excursion
    // resolution would diverge from per-call (or leak the old
    // rights), so bit-identity here pins the invalidation.
    core::System per_call(core::SystemConfig::forModel(GetParam()));
    core::System batched(core::SystemConfig::forModel(GetParam()));
    vm::VAddr base{};
    std::vector<std::unique_ptr<SwitchingServer>> servers;
    for (core::System *sys : {&per_call, &batched}) {
        const os::DomainId app = sys->kernel().createDomain("app");
        const os::DomainId srv = sys->kernel().createDomain("server");
        const vm::SegmentId seg = sys->kernel().createSegment("heap", 8);
        sys->kernel().attach(app, seg, vm::Access::Read);
        sys->kernel().attach(srv, seg, vm::Access::ReadWrite);
        servers.push_back(std::make_unique<SwitchingServer>(app, srv));
        sys->kernel().setSegmentServer(seg, servers.back().get());
        sys->kernel().switchTo(app);
        base = sys->state().segments.find(seg)->base();
    }
    // Runs of same-page references around each fault so the memo is
    // warm when the excursion happens.
    std::vector<vm::VAddr> vas;
    for (u64 page = 0; page < 8; ++page)
        for (u64 rep = 0; rep < 40; ++rep)
            vas.push_back(base + page * vm::kPageBytes);

    u64 completed_per_call = 0;
    for (const vm::VAddr va : vas)
        completed_per_call += per_call.access(va, vm::AccessType::Store);
    VectorStream stream(vas);
    Rng rng(1);
    const core::RunResult result =
        batched.run(stream, vas.size(), rng, vm::AccessType::Store);

    EXPECT_EQ(result.failed, 0u);
    EXPECT_EQ(result.completed, completed_per_call);
    EXPECT_EQ(batched.cycles().count(), per_call.cycles().count());
    std::ostringstream dump_b, dump_p;
    batched.dumpStats(dump_b);
    per_call.dumpStats(dump_p);
    EXPECT_EQ(dump_b.str(), dump_p.str());
}

TEST_P(BatchedRunTest, RightsRevocationReachesAWarmMemo)
{
    // Warm the coalescing memo with same-page stores, revoke the
    // write right, and store again: every post-revocation reference
    // must deny. A memo that survived onSetPageRights would keep
    // completing stores the canonical state forbids.
    TwinSystems twins(GetParam());
    const std::vector<vm::VAddr> warm(64, twins.base);
    expectTwinsMatch(twins, warm, vm::AccessType::Store);

    const os::DomainId app = twins.batched.kernel().currentDomain();
    twins.perCall.kernel().setPageRights(app, vm::pageOf(twins.base),
                                         vm::Access::Read);
    twins.batched.kernel().setPageRights(app, vm::pageOf(twins.base),
                                         vm::Access::Read);

    VectorStream stream(std::vector<vm::VAddr>(64, twins.base));
    Rng rng(1);
    const core::RunResult after =
        twins.batched.run(stream, 64, rng, vm::AccessType::Store);
    EXPECT_EQ(after.failed, 64u);
    EXPECT_EQ(after.completed, 0u);
    const std::vector<vm::VAddr> denied(64, twins.base);
    for (const vm::VAddr va : denied)
        EXPECT_FALSE(twins.perCall.access(va, vm::AccessType::Store));
    EXPECT_EQ(twins.dump(twins.batched), twins.dump(twins.perCall));
}

TEST_P(BatchedRunTest, DetachReachesAWarmMemo)
{
    // Same shape with the whole grant revoked: detach mid-stream.
    core::System per_call(core::SystemConfig::forModel(GetParam()));
    core::System batched(core::SystemConfig::forModel(GetParam()));
    vm::VAddr base{};
    vm::SegmentId seg{};
    os::DomainId app{};
    for (core::System *sys : {&per_call, &batched}) {
        app = sys->kernel().createDomain("app");
        seg = sys->kernel().createSegment("heap", 8);
        sys->kernel().attach(app, seg, vm::Access::ReadWrite);
        sys->kernel().switchTo(app);
        base = sys->state().segments.find(seg)->base();
    }
    const std::vector<vm::VAddr> warm(64, base);
    u64 completed = 0;
    for (const vm::VAddr va : warm)
        completed += per_call.access(va, vm::AccessType::Load);
    {
        VectorStream stream(warm);
        Rng rng(1);
        const core::RunResult result =
            batched.run(stream, warm.size(), rng, vm::AccessType::Load);
        EXPECT_EQ(result.completed, completed);
    }

    per_call.kernel().detach(app, seg);
    batched.kernel().detach(app, seg);

    VectorStream stream(warm);
    Rng rng(1);
    const core::RunResult after =
        batched.run(stream, 64, rng, vm::AccessType::Load);
    EXPECT_EQ(after.completed, 0u);
    EXPECT_EQ(after.failed, 64u);
    for (const vm::VAddr va : warm)
        EXPECT_FALSE(per_call.access(va, vm::AccessType::Load));
    std::ostringstream dump_b, dump_p;
    batched.dumpStats(dump_b);
    per_call.dumpStats(dump_p);
    EXPECT_EQ(dump_b.str(), dump_p.str());
}

TEST_P(BatchedRunTest, DirectPurgePlusMemoInvalidateStaysIdentical)
{
    // The multi-core ack path purges a core's structures directly
    // (no kernel hook runs) and then calls invalidateBatchMemo().
    // Mirror that sequence on both twins: after the purge the next
    // batch must re-probe and refill exactly like per-call instead
    // of replaying the pre-purge resolution from the memo.
    TwinSystems twins(GetParam());
    const std::vector<vm::VAddr> warm(64, twins.base);
    expectTwinsMatch(twins, warm, vm::AccessType::Load);

    const os::DomainId app = twins.batched.kernel().currentDomain();
    const vm::Vpn first = vm::pageOf(twins.base);
    for (core::System *sys : {&twins.perCall, &twins.batched}) {
        if (auto *plb = sys->plbSystem()) {
            plb->plb().purgeRange(app, first, 64);
        } else if (auto *pg = sys->pageGroupSystem()) {
            pg->pageGroupCache().purgeAll();
            pg->tlb().purgeRange(std::nullopt, first, 64);
        } else if (auto *pkey = sys->pkeySystem()) {
            pkey->keyCache().purgeAll();
            pkey->tlb().purgeRange(std::nullopt, first, 64);
        } else {
            sys->conventionalSystem()->tlb().purgeRange(std::nullopt,
                                                        first, 64);
        }
        sys->model().invalidateBatchMemo();
    }

    expectTwinsMatch(twins, warm, vm::AccessType::Load);
}

TEST_P(BatchedRunTest, FaultInjectedRunMatchesPerCall)
{
    // With the fault injector armed the batch driver must take the
    // exact per-reference path (perturbations are scheduled per
    // reference); A/B the two loops under an active campaign.
    core::SystemConfig config = core::SystemConfig::forModel(GetParam());
    config.faults.enabled = true;
    config.faults.seed = 99;
    config.faults.rate = 0.05;
    core::System per_call(config);
    core::System batched(config);
    vm::VAddr base{};
    for (core::System *sys : {&per_call, &batched}) {
        const os::DomainId app = sys->kernel().createDomain("app");
        const vm::SegmentId seg = sys->kernel().createSegment("heap", 64);
        sys->kernel().attach(app, seg, vm::Access::ReadWrite);
        sys->kernel().switchTo(app);
        base = sys->state().segments.find(seg)->base();
    }
    constexpr u64 kRefs = 20'000;
    wl::ZipfPageStream stream_a(base, 64, 0.8, 5);
    wl::ZipfPageStream stream_b(base, 64, 0.8, 5);
    Rng rng_a(5);
    Rng rng_b(5);
    u64 completed = 0;
    for (u64 i = 0; i < kRefs; ++i)
        completed += per_call.access(stream_a.next(rng_a),
                                     vm::AccessType::Load);
    const core::RunResult result =
        batched.run(stream_b, kRefs, rng_b, vm::AccessType::Load);
    EXPECT_EQ(result.completed, completed);
    EXPECT_EQ(batched.cycles().count(), per_call.cycles().count());
    std::ostringstream dump_b, dump_p;
    batched.dumpStats(dump_b);
    per_call.dumpStats(dump_p);
    EXPECT_EQ(dump_b.str(), dump_p.str());
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, BatchedRunTest,
    ::testing::Values(core::ModelKind::Plb, core::ModelKind::PageGroup,
                      core::ModelKind::Conventional,
                      core::ModelKind::Pkey),
    [](const ::testing::TestParamInfo<core::ModelKind> &info) {
        switch (info.param) {
          case core::ModelKind::Plb:
            return "plb";
          case core::ModelKind::PageGroup:
            return "pagegroup";
          case core::ModelKind::Conventional:
            return "conventional";
          case core::ModelKind::Pkey:
            return "pkey";
        }
        return "unknown";
    });
