/**
 * @file
 * Tests for the observability layer: the per-thread ring tracer
 * (wrap/overflow accounting, deterministic merge across worker
 * counts), the Perfetto JSON schema of emitted traces, the
 * event-vs-stats reconciliation, the streaming JSON writer, and the
 * machine-readable stats exporters.
 *
 * The trace-schema tests parse the emitted JSON with a minimal
 * recursive-descent parser (below) rather than eyeballing substrings,
 * so a malformed artifact cannot slip through as "contains the right
 * words".
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "obs/export.hh"
#include "obs/json.hh"
#include "obs/perfetto.hh"
#include "obs/tracer.hh"
#include "sasos.hh"
#include "farm/campaign.hh"
#include "workload/address_stream.hh"

using namespace sasos;

namespace
{

// ---------------------------------------------------------------------
// A minimal JSON value + parser, just enough to validate our own
// artifacts. Throws std::runtime_error on malformed input.

struct JsonValue
{
    enum Kind { Null, Bool, Number, String, Array, Object } kind = Null;
    bool boolean = false;
    double number = 0.0;
    std::string text;
    std::vector<JsonValue> items;
    std::map<std::string, JsonValue> members;

    const JsonValue &
    at(const std::string &key) const
    {
        auto it = members.find(key);
        if (it == members.end())
            throw std::runtime_error("missing key " + key);
        return it->second;
    }

    bool has(const std::string &key) const { return members.count(key); }
};

class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text_(text) {}

    JsonValue
    parse()
    {
        JsonValue value = parseValue();
        skipWs();
        if (pos_ != text_.size())
            throw std::runtime_error("trailing garbage");
        return value;
    }

  private:
    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
        }
    }

    char
    peek()
    {
        skipWs();
        if (pos_ >= text_.size())
            throw std::runtime_error("unexpected end");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            throw std::runtime_error(std::string("expected ") + c);
        ++pos_;
    }

    JsonValue
    parseValue()
    {
        switch (peek()) {
          case '{':
            return parseObject();
          case '[':
            return parseArray();
          case '"':
            return parseString();
          case 't':
          case 'f':
            return parseBool();
          case 'n':
            return parseNull();
          default:
            return parseNumber();
        }
    }

    JsonValue
    parseObject()
    {
        JsonValue value;
        value.kind = JsonValue::Object;
        expect('{');
        if (peek() == '}') {
            ++pos_;
            return value;
        }
        while (true) {
            JsonValue key = parseString();
            expect(':');
            value.members[key.text] = parseValue();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return value;
        }
    }

    JsonValue
    parseArray()
    {
        JsonValue value;
        value.kind = JsonValue::Array;
        expect('[');
        if (peek() == ']') {
            ++pos_;
            return value;
        }
        while (true) {
            value.items.push_back(parseValue());
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return value;
        }
    }

    JsonValue
    parseString()
    {
        JsonValue value;
        value.kind = JsonValue::String;
        expect('"');
        while (true) {
            if (pos_ >= text_.size())
                throw std::runtime_error("unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                return value;
            if (static_cast<unsigned char>(c) < 0x20)
                throw std::runtime_error("raw control char in string");
            if (c != '\\') {
                value.text.push_back(c);
                continue;
            }
            if (pos_ >= text_.size())
                throw std::runtime_error("dangling escape");
            char esc = text_[pos_++];
            switch (esc) {
              case '"': value.text.push_back('"'); break;
              case '\\': value.text.push_back('\\'); break;
              case '/': value.text.push_back('/'); break;
              case 'n': value.text.push_back('\n'); break;
              case 't': value.text.push_back('\t'); break;
              case 'r': value.text.push_back('\r'); break;
              case 'b': value.text.push_back('\b'); break;
              case 'f': value.text.push_back('\f'); break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    throw std::runtime_error("short \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code += static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code += static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code += static_cast<unsigned>(h - 'A' + 10);
                    else
                        throw std::runtime_error("bad \\u digit");
                }
                value.text.push_back(static_cast<char>(code));
                break;
              }
              default:
                throw std::runtime_error("unknown escape");
            }
        }
    }

    JsonValue
    parseBool()
    {
        JsonValue value;
        value.kind = JsonValue::Bool;
        if (text_.compare(pos_, 4, "true") == 0) {
            value.boolean = true;
            pos_ += 4;
        } else if (text_.compare(pos_, 5, "false") == 0) {
            value.boolean = false;
            pos_ += 5;
        } else {
            throw std::runtime_error("bad literal");
        }
        return value;
    }

    JsonValue
    parseNull()
    {
        if (text_.compare(pos_, 4, "null") != 0)
            throw std::runtime_error("bad literal");
        pos_ += 4;
        JsonValue value;
        value.kind = JsonValue::Null;
        return value;
    }

    JsonValue
    parseNumber()
    {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-')) {
            ++pos_;
        }
        if (pos_ == start)
            throw std::runtime_error("bad number");
        JsonValue value;
        value.kind = JsonValue::Number;
        value.number = std::stod(text_.substr(start, pos_ - start));
        return value;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

JsonValue
parseJson(const std::string &text)
{
    return JsonParser(text).parse();
}

// ---------------------------------------------------------------------
// Helpers.

/** RAII guard: whatever a test does, tracing is off afterwards. */
struct TracingGuard
{
    ~TracingGuard()
    {
        obs::stopTracing();
        obs::setThreadId(0);
    }
};

core::System &
setupSystem(std::unique_ptr<core::System> &sys, core::ModelKind kind,
            u64 pages = 64)
{
    sys = std::make_unique<core::System>(core::SystemConfig::forModel(kind));
    const os::DomainId app = sys->kernel().createDomain("app");
    const vm::SegmentId seg = sys->kernel().createSegment("heap", pages);
    sys->kernel().attach(app, seg, vm::Access::ReadWrite);
    sys->kernel().switchTo(app);
    return *sys;
}

u64
countKind(const std::vector<obs::Event> &events, obs::EventKind kind)
{
    u64 n = 0;
    for (const obs::Event &event : events)
        n += event.kind == kind;
    return n;
}

std::vector<farm::SweepCell>
smallSweep()
{
    std::vector<farm::SweepCell> cells;
    for (const char *model : {"plb", "pg", "conv"}) {
        for (u64 seed = 1; seed <= 2; ++seed) {
            farm::SweepCell cell;
            cell.model = model;
            cell.workload = "zipf";
            cell.seed = seed;
            cell.config = core::SystemConfig::forModel(
                std::string(model) == "plb"
                    ? core::ModelKind::Plb
                    : std::string(model) == "pg"
                          ? core::ModelKind::PageGroup
                          : core::ModelKind::Conventional);
            cell.pages = 32;
            cell.references = 2'000;
            cell.makeStream = [](vm::VAddr base, u64 pages, u64 seed) {
                return std::make_unique<wl::ZipfPageStream>(base, pages,
                                                            0.8, seed);
            };
            cells.push_back(std::move(cell));
        }
    }
    return cells;
}

} // namespace

// ---------------------------------------------------------------------
// Ring buffer semantics.

TEST(ObsRingTest, CollectsEmittedEventsInOrder)
{
    TracingGuard guard;
    obs::startTracing({.bufferEvents = 64});
    obs::setThreadId(3);
    for (u64 i = 0; i < 10; ++i)
        obs::emit(obs::EventKind::AccessBegin, /*cycle=*/100 + i, i, i * 2);
    const std::vector<obs::Event> events = obs::stopTracing();
    ASSERT_EQ(events.size(), 10u);
    for (u64 i = 0; i < 10; ++i) {
        EXPECT_EQ(events[i].cycle, 100 + i);
        EXPECT_EQ(events[i].addr, i);
        EXPECT_EQ(events[i].arg, i * 2);
        EXPECT_EQ(events[i].tid, 3u);
        EXPECT_EQ(events[i].seq, i);
        EXPECT_EQ(events[i].kind, obs::EventKind::AccessBegin);
    }
    EXPECT_EQ(obs::droppedEvents(), 0u);
}

TEST(ObsRingTest, WrapKeepsNewestAndCountsDrops)
{
    TracingGuard guard;
    obs::startTracing({.bufferEvents = 8});
    obs::setThreadId(1);
    for (u64 i = 0; i < 20; ++i)
        obs::emit(obs::EventKind::PlbHit, /*cycle=*/i);
    EXPECT_EQ(obs::droppedEvents(), 12u);
    const std::vector<obs::Event> events = obs::stopTracing();
    // The ring keeps the 8 newest events, oldest-to-newest.
    ASSERT_EQ(events.size(), 8u);
    for (u64 i = 0; i < 8; ++i)
        EXPECT_EQ(events[i].cycle, 12 + i);
}

TEST(ObsRingTest, RestartResetsRingsAndDropCounter)
{
    TracingGuard guard;
    obs::startTracing({.bufferEvents = 4});
    for (u64 i = 0; i < 9; ++i)
        obs::emit(obs::EventKind::TlbHit, i);
    EXPECT_GT(obs::droppedEvents(), 0u);
    obs::stopTracing();

    obs::startTracing({.bufferEvents = 16});
    obs::emit(obs::EventKind::TlbMiss, 1);
    EXPECT_EQ(obs::droppedEvents(), 0u);
    const std::vector<obs::Event> events = obs::stopTracing();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].kind, obs::EventKind::TlbMiss);
}

TEST(ObsRingTest, DisabledEmitMacroIsInert)
{
    // No startTracing: the macro must not register rings or record.
    SASOS_OBS_EVENT(obs::EventKind::AccessBegin, 1, 2, 3);
    EXPECT_FALSE(obs::enabled());
    const std::vector<obs::Event> events = obs::stopTracing();
    EXPECT_TRUE(events.empty());
}

// ---------------------------------------------------------------------
// Deterministic merge across worker counts.

TEST(ObsMergeTest, SweepTraceIsIdenticalAcrossThreadCounts)
{
    TracingGuard guard;
    const std::vector<farm::SweepCell> cells = smallSweep();

    auto traceSweep = [&](unsigned threads) {
        obs::startTracing({.bufferEvents = u64{1} << 18});
        farm::SweepRunner runner(threads);
        runner.run(cells);
        return obs::stopTracing();
    };

    const std::vector<obs::Event> serial = traceSweep(1);
    const std::vector<obs::Event> parallel = traceSweep(4);

    ASSERT_FALSE(serial.empty());
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].cycle, parallel[i].cycle) << "at " << i;
        EXPECT_EQ(serial[i].tid, parallel[i].tid) << "at " << i;
        EXPECT_EQ(serial[i].seq, parallel[i].seq) << "at " << i;
        EXPECT_EQ(serial[i].kind, parallel[i].kind) << "at " << i;
        EXPECT_EQ(serial[i].addr, parallel[i].addr) << "at " << i;
        EXPECT_EQ(serial[i].arg, parallel[i].arg) << "at " << i;
    }

    // Each cell carries its own logical tid (cell index + 1).
    std::set<u32> tids;
    for (const obs::Event &event : serial)
        tids.insert(event.tid);
    EXPECT_EQ(tids.size(), cells.size());
}

TEST(ObsMergeTest, MergeOrdersByCycleThenTidAndRenumbersSeq)
{
    TracingGuard guard;
    obs::startTracing({.bufferEvents = 64});
    // Interleave two logical threads from one OS thread, emitting
    // cycles out of order across tids.
    obs::setThreadId(2);
    obs::emit(obs::EventKind::PlbMiss, /*cycle=*/50);
    obs::setThreadId(1);
    obs::emit(obs::EventKind::PlbHit, /*cycle=*/10);
    obs::emit(obs::EventKind::PlbHit, /*cycle=*/50);
    obs::setThreadId(2);
    obs::emit(obs::EventKind::PlbMiss, /*cycle=*/10);
    const std::vector<obs::Event> events = obs::stopTracing();
    ASSERT_EQ(events.size(), 4u);
    // (10,tid1) (10,tid2) (50,tid1) (50,tid2)
    EXPECT_EQ(events[0].cycle, 10u);
    EXPECT_EQ(events[0].tid, 1u);
    EXPECT_EQ(events[1].cycle, 10u);
    EXPECT_EQ(events[1].tid, 2u);
    EXPECT_EQ(events[2].cycle, 50u);
    EXPECT_EQ(events[2].tid, 1u);
    EXPECT_EQ(events[3].cycle, 50u);
    EXPECT_EQ(events[3].tid, 2u);
    // seq renumbered per tid.
    EXPECT_EQ(events[0].seq, 0u);
    EXPECT_EQ(events[2].seq, 1u);
    EXPECT_EQ(events[1].seq, 0u);
    EXPECT_EQ(events[3].seq, 1u);
}

// ---------------------------------------------------------------------
// Perfetto JSON schema.

TEST(ObsPerfettoTest, EmittedJsonSatisfiesTraceEventSchema)
{
    TracingGuard guard;
    std::unique_ptr<core::System> sys;
    core::System &system = setupSystem(sys, core::ModelKind::Plb);

    obs::startTracing({.bufferEvents = u64{1} << 18});
    wl::ZipfPageStream stream(vm::VAddr(0x100000), 64, 0.8, 7);
    Rng rng(7);
    system.run(stream, 5'000, rng);
    const u64 dropped = obs::droppedEvents();
    const std::vector<obs::Event> events = obs::stopTracing();

    std::ostringstream os;
    obs::writePerfettoJson(os, events, dropped);
    const JsonValue root = parseJson(os.str());

    ASSERT_EQ(root.kind, JsonValue::Object);
    EXPECT_EQ(root.at("displayTimeUnit").text, "ns");
    EXPECT_EQ(root.at("otherData").at("droppedEvents").number, 0.0);

    const JsonValue &trace = root.at("traceEvents");
    ASSERT_EQ(trace.kind, JsonValue::Array);
    ASSERT_EQ(trace.items.size(), events.size());

    // Every event carries the required keys; B/E spans nest per tid.
    std::map<double, std::vector<std::string>> open;
    for (const JsonValue &event : trace.items) {
        ASSERT_EQ(event.kind, JsonValue::Object);
        EXPECT_EQ(event.at("name").kind, JsonValue::String);
        EXPECT_FALSE(event.at("name").text.empty());
        EXPECT_EQ(event.at("ts").kind, JsonValue::Number);
        EXPECT_EQ(event.at("pid").kind, JsonValue::Number);
        EXPECT_EQ(event.at("tid").kind, JsonValue::Number);
        const std::string &ph = event.at("ph").text;
        ASSERT_TRUE(ph == "B" || ph == "E" || ph == "i") << ph;
        const double tid = event.at("tid").number;
        if (ph == "B") {
            open[tid].push_back(event.at("name").text);
        } else if (ph == "E") {
            ASSERT_FALSE(open[tid].empty()) << "E without B";
            open[tid].pop_back();
        } else {
            EXPECT_EQ(event.at("s").text, "t");
        }
    }
    for (const auto &[tid, stack] : open)
        EXPECT_TRUE(stack.empty()) << "unclosed B on tid " << tid;
}

TEST(ObsPerfettoTest, ScopedTraceWritesFileWhenEnabled)
{
    TracingGuard guard;
    const std::string path =
        (std::filesystem::temp_directory_path() / "obs_scoped.json")
            .string();
    Options options;
    options.set("trace", "1");
    options.set("trace_out", path);
    options.set("trace_buf", "1024");
    {
        obs::ScopedTrace trace(options);
        ASSERT_TRUE(trace.active());
        EXPECT_TRUE(obs::enabled());
        obs::emit(obs::EventKind::DomainSwitch, 5, 0, 2);
    }
    EXPECT_FALSE(obs::enabled());
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream text;
    text << in.rdbuf();
    const JsonValue root = parseJson(text.str());
    EXPECT_GE(root.at("traceEvents").items.size(), 1u);
    std::remove(path.c_str());
}

TEST(ObsPerfettoTest, InactiveScopedTraceIsInert)
{
    Options options;
    obs::ScopedTrace trace(options);
    EXPECT_FALSE(trace.active());
    EXPECT_FALSE(obs::enabled());
}

// ---------------------------------------------------------------------
// Events reconcile with the stats tree.

class ObsReconcileTest : public testing::TestWithParam<core::ModelKind>
{
};

TEST_P(ObsReconcileTest, EventCountsMatchStatsCounters)
{
    TracingGuard guard;
    std::unique_ptr<core::System> sys;
    core::System &system = setupSystem(sys, GetParam());

    obs::startTracing({.bufferEvents = u64{1} << 18});
    wl::ZipfPageStream stream(vm::VAddr(0x100000), 64, 0.8, 7);
    Rng rng(7);
    system.run(stream, 5'000, rng, vm::AccessType::Store);
    const std::vector<obs::Event> events = obs::stopTracing();

    auto &kernel = system.kernel();
    EXPECT_EQ(countKind(events, obs::EventKind::AccessBegin),
              system.references.value());
    EXPECT_EQ(countKind(events, obs::EventKind::AccessEnd),
              system.references.value());
    EXPECT_EQ(countKind(events, obs::EventKind::ProtectionFault),
              kernel.protectionFaults.value());
    EXPECT_EQ(countKind(events, obs::EventKind::TranslationFault),
              kernel.translationFaults.value());
    EXPECT_EQ(countKind(events, obs::EventKind::FaultRetry),
              kernel.faultRetries.value());
    EXPECT_EQ(countKind(events, obs::EventKind::DomainSwitch),
              kernel.domainSwitches.value());

    if (GetParam() == core::ModelKind::Plb) {
        auto *plb = system.plbSystem();
        ASSERT_NE(plb, nullptr);
        EXPECT_EQ(countKind(events, obs::EventKind::PlbFill),
                  plb->pageFills.value() + plb->superPageFills.value());
        EXPECT_EQ(countKind(events, obs::EventKind::PlbMiss),
                  plb->pageFills.value() + plb->superPageFills.value());
    }
    if (GetParam() == core::ModelKind::PageGroup) {
        auto *pg = system.pageGroupSystem();
        ASSERT_NE(pg, nullptr);
        EXPECT_EQ(countKind(events, obs::EventKind::PgCacheFill),
                  pg->pgCacheRefills.value());
    }
}

INSTANTIATE_TEST_SUITE_P(AllModels, ObsReconcileTest,
                         testing::Values(core::ModelKind::Plb,
                                         core::ModelKind::PageGroup,
                                         core::ModelKind::Conventional));

TEST(ObsReconcileTest, TracedRunIsBitIdenticalToUntraced)
{
    TracingGuard guard;
    // The traced System::run falls back to per-reference access();
    // simulated cycles and stats must not change.
    auto runOnce = [](bool traced) {
        std::unique_ptr<core::System> sys;
        core::System &system = setupSystem(sys, core::ModelKind::Plb);
        if (traced)
            obs::startTracing({.bufferEvents = u64{1} << 18});
        wl::ZipfPageStream stream(vm::VAddr(0x100000), 64, 0.8, 7);
        Rng rng(7);
        system.run(stream, 5'000, rng);
        if (traced)
            obs::stopTracing();
        std::ostringstream dump;
        system.dumpStats(dump);
        return dump.str();
    };
    EXPECT_EQ(runOnce(false), runOnce(true));
}

// ---------------------------------------------------------------------
// JsonWriter.

TEST(JsonWriterTest, EscapesStrings)
{
    EXPECT_EQ(obs::jsonEscape("plain"), "plain");
    EXPECT_EQ(obs::jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(obs::jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(obs::jsonEscape("a\nb\tc"), "a\\nb\\tc");
    EXPECT_EQ(obs::jsonEscape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(JsonWriterTest, NestedStructureParses)
{
    std::ostringstream os;
    obs::JsonWriter json(os);
    json.beginObject();
    json.member("name", "va\"lue");
    json.member("count", u64{42});
    json.member("ratio", 0.5);
    json.member("flag", true);
    json.key("list");
    json.beginArray();
    json.value(u64{1});
    json.value("two");
    json.beginObject();
    json.member("deep", false);
    json.endObject();
    json.endArray();
    json.endObject();

    const JsonValue root = parseJson(os.str());
    EXPECT_EQ(root.at("name").text, "va\"lue");
    EXPECT_EQ(root.at("count").number, 42.0);
    EXPECT_EQ(root.at("ratio").number, 0.5);
    EXPECT_TRUE(root.at("flag").boolean);
    ASSERT_EQ(root.at("list").items.size(), 3u);
    EXPECT_EQ(root.at("list").items[1].text, "two");
    EXPECT_FALSE(root.at("list").items[2].at("deep").boolean);
}

TEST(JsonWriterTest, DoublesRoundTrip)
{
    for (double v : {0.0, 1.0, 0.1, 1e-9, 123456.789, 1e300}) {
        std::ostringstream os;
        obs::JsonWriter json(os);
        json.beginArray();
        json.value(v);
        json.endArray();
        const JsonValue root = parseJson(os.str());
        EXPECT_EQ(root.items[0].number, v) << os.str();
    }
}

// ---------------------------------------------------------------------
// Stats exporters.

TEST(StatsExportTest, JsonTreeMirrorsStatsDump)
{
    std::unique_ptr<core::System> sys;
    core::System &system = setupSystem(sys, core::ModelKind::Plb);
    wl::ZipfPageStream stream(vm::VAddr(0x100000), 64, 0.8, 7);
    Rng rng(7);
    system.run(stream, 2'000, rng);

    std::ostringstream os;
    system.dumpStatsJson(os);
    const JsonValue root = parseJson(os.str());

    const JsonValue &tree = root.at("stats").at("system");
    EXPECT_EQ(tree.at("references").number, 2000.0);
    EXPECT_TRUE(tree.has("kernel"));
    EXPECT_TRUE(tree.has("plbSystem"));
    EXPECT_EQ(tree.at("kernel").at("domainSwitches").number,
              static_cast<double>(
                  system.kernel().domainSwitches.value()));
    // The cycle breakdown reconciles with the account.
    EXPECT_EQ(root.at("cycles").at("total").number,
              static_cast<double>(system.cycles().count()));
}

TEST(StatsExportTest, CsvHasHeaderAndDottedPaths)
{
    std::unique_ptr<core::System> sys;
    core::System &system = setupSystem(sys, core::ModelKind::Conventional);
    wl::ZipfPageStream stream(vm::VAddr(0x100000), 64, 0.8, 7);
    Rng rng(7);
    system.run(stream, 1'000, rng);

    std::ostringstream os;
    system.dumpStatsCsv(os);
    std::istringstream in(os.str());
    std::string line;
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_EQ(line, "stat,value");
    bool saw_refs = false, saw_cycles = false;
    while (std::getline(in, line)) {
        ASSERT_NE(line.find(','), std::string::npos) << line;
        if (line.rfind("system.references,", 0) == 0) {
            saw_refs = true;
            EXPECT_EQ(line, "system.references,1000");
        }
        if (line.rfind("cycles.total,", 0) == 0)
            saw_cycles = true;
    }
    EXPECT_TRUE(saw_refs);
    EXPECT_TRUE(saw_cycles);
}

// ---------------------------------------------------------------------
// Fatal handler hook (used by the fuzz harness).

TEST(FatalHandlerTest, HandlerInterceptsFatal)
{
    FatalHandler previous =
        setFatalHandler([](const std::string &) {
            throw std::runtime_error("intercepted");
        });
    EXPECT_THROW(SASOS_FATAL("boom"), std::runtime_error);
    setFatalHandler(previous);
}
