/**
 * @file
 * Tests for the analytic geometry model against the paper's stated
 * numbers: Figure 1 field widths, the ~10% virtually tagged cache
 * overhead, and the ~25% smaller PLB entry.
 */

#include <gtest/gtest.h>

#include "hw/tag_sizing.hh"

using namespace sasos;
using namespace sasos::hw::sizing;

TEST(SizingTest, Figure1FieldWidths)
{
    // Figure 1: 64-bit addresses, 4 KB pages, fully associative PLB
    // => VPN 52 bits, PD-ID 16 bits, Rights 3 bits.
    SizingParams params;
    const EntryLayout plb = plbEntry(params);
    EXPECT_EQ(plb.bitsOf("vpn"), 52u);
    EXPECT_EQ(plb.bitsOf("pdid"), 16u);
    EXPECT_EQ(plb.bitsOf("rights"), 3u);
    EXPECT_EQ(plb.totalBits(), 71u);
}

TEST(SizingTest, SetAssociativePlbNeedsFewerTagBits)
{
    // The figure's caption: "fewer [VPN bits] would be needed with a
    // direct-mapped or associative organization."
    SizingParams params;
    params.sets = 64;
    EXPECT_EQ(plbEntry(params).bitsOf("vpn"), 52u - 6u);
}

TEST(SizingTest, PageGroupTlbEntryContents)
{
    SizingParams params;
    const EntryLayout entry = pageGroupTlbEntry(params);
    EXPECT_EQ(entry.bitsOf("vpn"), 52u);
    EXPECT_EQ(entry.bitsOf("pfn"), 24u); // 36 - 12
    EXPECT_EQ(entry.bitsOf("aid"), 16u);
    EXPECT_EQ(entry.bitsOf("rights"), 3u);
    EXPECT_EQ(entry.bitsOf("dirty"), 1u);
    EXPECT_EQ(entry.bitsOf("referenced"), 1u);
}

TEST(SizingTest, PlbEntryAboutQuarterSmallerThanPageGroupTlb)
{
    // Section 4: "PLB entries are smaller than page-group TLB entries
    // (about 25% ...) since they don't contain virtual-to-physical
    // translations."
    SizingParams params;
    const double ratio =
        static_cast<double>(plbEntry(params).totalBits()) /
        static_cast<double>(pageGroupTlbEntry(params).totalBits());
    EXPECT_NEAR(1.0 - ratio, 0.25, 0.03);
}

TEST(SizingTest, MorePlbEntriesInSameSilicon)
{
    SizingParams params;
    const u64 entries = entriesInSameArea(
        plbEntry(params), pageGroupTlbEntry(params), 128);
    EXPECT_GT(entries, 128u * 5 / 4); // at least 25% more
}

TEST(SizingTest, TranslationOnlyTlbIsSmallest)
{
    SizingParams params;
    EXPECT_LT(translationTlbEntry(params).totalBits(),
              pageGroupTlbEntry(params).totalBits());
    EXPECT_LT(translationTlbEntry(params).totalBits(),
              conventionalTlbEntry(params).totalBits());
}

TEST(SizingTest, ConventionalEntryCarriesAsid)
{
    SizingParams params;
    const EntryLayout entry = conventionalTlbEntry(params);
    EXPECT_EQ(entry.bitsOf("asid"), 16u);
    EXPECT_GT(entry.totalBits(), translationTlbEntry(params).totalBits());
}

TEST(SizingTest, VirtualTagOverheadNearTenPercent)
{
    // Section 3.2.1: "in a system with 64-bit virtual addresses,
    // 36-bit physical addresses and 32 byte cache lines, a virtually
    // tagged cache would be about 10% larger."
    CacheSizing cache;
    cache.sizeBytes = 64 * 1024;
    cache.lineBytes = 32;
    cache.ways = 1;
    const double overhead = virtualTagOverhead(cache);
    EXPECT_NEAR(overhead, 1.10, 0.015);
}

TEST(SizingTest, OverheadShrinksWithLargerLines)
{
    CacheSizing small;
    small.lineBytes = 32;
    CacheSizing large;
    large.lineBytes = 128;
    EXPECT_GT(virtualTagOverhead(small), virtualTagOverhead(large));
}

TEST(SizingTest, CacheLineBitsDecomposition)
{
    CacheSizing cache;
    cache.sizeBytes = 64 * 1024;
    cache.lineBytes = 32;
    cache.ways = 1;
    // 2048 lines, 11 index bits, 5 offset bits.
    // Virtual tag: 64 - 16 = 48; physical: 36 - 16 = 20.
    EXPECT_EQ(cacheLineBits(cache, Tagging::Virtual), 256u + 48u + 2u);
    EXPECT_EQ(cacheLineBits(cache, Tagging::Physical), 256u + 20u + 2u);
}

TEST(SizingTest, AssociativityRaisesTagBits)
{
    CacheSizing direct;
    CacheSizing assoc;
    assoc.ways = 4;
    EXPECT_GT(cacheLineBits(assoc, Tagging::Physical),
              cacheLineBits(direct, Tagging::Physical));
}

TEST(SizingTest, TotalBitsScaleWithSize)
{
    CacheSizing small;
    small.sizeBytes = 16 * 1024;
    CacheSizing big;
    big.sizeBytes = 64 * 1024;
    EXPECT_GT(cacheTotalBits(big, Tagging::Virtual),
              3 * cacheTotalBits(small, Tagging::Virtual));
}

TEST(SizingTest, LayoutTotalSumsFields)
{
    EntryLayout layout{{{"a", 3}, {"b", 4}}};
    EXPECT_EQ(layout.totalBits(), 7u);
    EXPECT_EQ(layout.bitsOf("a"), 3u);
    EXPECT_EQ(layout.bitsOf("missing"), 0u);
}

TEST(SizingTest, LargerPagesShrinkVpnAndPfn)
{
    SizingParams small;
    SizingParams large;
    large.pageShift = 16; // 64 KB pages
    EXPECT_EQ(plbEntry(large).bitsOf("vpn"), 48u);
    EXPECT_LT(pageGroupTlbEntry(large).totalBits(),
              pageGroupTlbEntry(small).totalBits());
}
