/**
 * @file
 * Tests for replacement policies, the generic associative store and
 * the data cache model, including a randomized equivalence check of
 * the associative store against a reference model and parameterized
 * sweeps over cache organizations.
 */

#include <gtest/gtest.h>

#include <list>
#include <map>

#include "hw/assoc_cache.hh"
#include "hw/data_cache.hh"
#include "hw/replacement.hh"
#include "sim/random.hh"
#include "sim/stats.hh"

using namespace sasos;
using namespace sasos::hw;

TEST(ReplacementTest, ParseNames)
{
    EXPECT_EQ(parsePolicyKind("lru"), PolicyKind::Lru);
    EXPECT_EQ(parsePolicyKind("fifo"), PolicyKind::Fifo);
    EXPECT_EQ(parsePolicyKind("random"), PolicyKind::Random);
    EXPECT_EQ(parsePolicyKind("plru"), PolicyKind::TreePlru);
}

TEST(ReplacementTest, LruEvictsLeastRecentlyUsed)
{
    auto policy = makePolicy(PolicyKind::Lru, 1, 4);
    for (std::size_t way = 0; way < 4; ++way)
        policy->fill(0, way);
    policy->touch(0, 0); // 0 becomes MRU; 1 is now LRU
    EXPECT_EQ(policy->victim(0), 1u);
    policy->touch(0, 1);
    EXPECT_EQ(policy->victim(0), 2u);
}

TEST(ReplacementTest, FifoIgnoresTouches)
{
    auto policy = makePolicy(PolicyKind::Fifo, 1, 4);
    for (std::size_t way = 0; way < 4; ++way)
        policy->fill(0, way);
    policy->touch(0, 0);
    policy->touch(0, 0);
    EXPECT_EQ(policy->victim(0), 0u); // still the oldest fill
}

TEST(ReplacementTest, RandomIsDeterministicPerSeed)
{
    auto a = makePolicy(PolicyKind::Random, 1, 8, 42);
    auto b = makePolicy(PolicyKind::Random, 1, 8, 42);
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(a->victim(0), b->victim(0));
}

TEST(ReplacementTest, RandomVictimsInRange)
{
    auto policy = makePolicy(PolicyKind::Random, 1, 4, 3);
    for (int i = 0; i < 100; ++i)
        EXPECT_LT(policy->victim(0), 4u);
}

TEST(ReplacementTest, TreePlruNeverEvictsMostRecent)
{
    auto policy = makePolicy(PolicyKind::TreePlru, 1, 8);
    for (std::size_t way = 0; way < 8; ++way)
        policy->fill(0, way);
    for (std::size_t way = 0; way < 8; ++way) {
        policy->touch(0, way);
        EXPECT_NE(policy->victim(0), way);
    }
}

TEST(ReplacementTest, PerSetIndependence)
{
    auto policy = makePolicy(PolicyKind::Lru, 2, 2);
    policy->fill(0, 0);
    policy->fill(0, 1);
    policy->fill(1, 1);
    policy->fill(1, 0);
    EXPECT_EQ(policy->victim(0), 0u);
    EXPECT_EQ(policy->victim(1), 1u);
}

TEST(AssocCacheTest, InsertLookupInvalidate)
{
    AssocCache<u64, int> cache(1, 4, PolicyKind::Lru);
    EXPECT_FALSE(cache.insert(0, 10, 100).has_value());
    int *payload = cache.lookup(0, 10);
    ASSERT_NE(payload, nullptr);
    EXPECT_EQ(*payload, 100);
    EXPECT_TRUE(cache.invalidate(0, 10));
    EXPECT_EQ(cache.lookup(0, 10), nullptr);
    EXPECT_FALSE(cache.invalidate(0, 10));
}

TEST(AssocCacheTest, EvictionReportsVictim)
{
    AssocCache<u64, int> cache(1, 2, PolicyKind::Lru);
    cache.insert(0, 1, 10);
    cache.insert(0, 2, 20);
    cache.lookup(0, 1); // 2 is LRU
    auto victim = cache.insert(0, 3, 30);
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(victim->tag, 2u);
    EXPECT_EQ(victim->payload, 20);
    EXPECT_EQ(cache.occupancy(), 2u);
}

TEST(AssocCacheTest, InvalidWaysFilledFirst)
{
    AssocCache<u64, int> cache(1, 3, PolicyKind::Lru);
    cache.insert(0, 1, 1);
    cache.insert(0, 2, 2);
    cache.invalidate(0, 1);
    EXPECT_FALSE(cache.insert(0, 3, 3).has_value()); // reuses slot
    EXPECT_NE(cache.lookup(0, 2), nullptr);
}

TEST(AssocCacheTest, InvalidateIfScansEverything)
{
    AssocCache<u64, int> cache(2, 2, PolicyKind::Lru);
    cache.insert(0, 2, 1);
    cache.insert(0, 4, 2);
    cache.insert(1, 1, 3);
    cache.insert(1, 3, 4);
    const PurgeResult result = cache.invalidateIf(
        [](u64 tag, const int &) { return tag % 2 == 0; });
    EXPECT_EQ(result.scanned, 4u);
    EXPECT_EQ(result.invalidated, 2u);
    EXPECT_EQ(cache.occupancy(), 2u);
}

TEST(AssocCacheTest, InvalidateAllResets)
{
    AssocCache<u64, int> cache(1, 4, PolicyKind::Lru);
    cache.insert(0, 1, 1);
    cache.insert(0, 2, 2);
    EXPECT_EQ(cache.invalidateAll(), 2u);
    EXPECT_EQ(cache.occupancy(), 0u);
}

TEST(AssocCacheTest, ProbeDoesNotTouchReplacement)
{
    AssocCache<u64, int> cache(1, 2, PolicyKind::Lru);
    cache.insert(0, 1, 1);
    cache.insert(0, 2, 2); // LRU order: 1, 2
    cache.probe(0, 1);     // must NOT make 1 MRU
    auto victim = cache.insert(0, 3, 3);
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(victim->tag, 1u);
}

TEST(AssocCacheDeathTest, DuplicateInsertPanics)
{
    AssocCache<u64, int> cache(1, 2, PolicyKind::Lru);
    cache.insert(0, 1, 1);
    EXPECT_DEATH(cache.insert(0, 1, 2), "duplicate");
}

/**
 * Randomized equivalence: a fully associative LRU AssocCache must
 * behave exactly like a reference map + LRU list.
 */
TEST(AssocCacheTest, MatchesReferenceModelUnderRandomOps)
{
    constexpr std::size_t kWays = 8;
    AssocCache<u64, u64> cache(1, kWays, PolicyKind::Lru);
    std::map<u64, u64> ref;
    std::list<u64> lru; // front = LRU
    Rng rng(2024);

    auto ref_touch = [&](u64 tag) {
        lru.remove(tag);
        lru.push_back(tag);
    };

    for (int op = 0; op < 4000; ++op) {
        const u64 tag = rng.nextBelow(24);
        switch (rng.nextBelow(3)) {
          case 0: { // lookup
            u64 *got = cache.lookup(0, tag);
            const bool ref_has = ref.count(tag) != 0;
            ASSERT_EQ(got != nullptr, ref_has) << "op " << op;
            if (ref_has) {
                ASSERT_EQ(*got, ref[tag]);
                ref_touch(tag);
            }
            break;
          }
          case 1: { // insert (skip if present)
            if (ref.count(tag))
                break;
            const u64 value = rng.next();
            cache.insert(0, tag, value);
            if (ref.size() == kWays) {
                const u64 victim = lru.front();
                lru.pop_front();
                ref.erase(victim);
            }
            ref[tag] = value;
            ref_touch(tag);
            break;
          }
          default: { // invalidate
            const bool was = cache.invalidate(0, tag);
            ASSERT_EQ(was, ref.erase(tag) != 0);
            lru.remove(tag);
            break;
          }
        }
        ASSERT_EQ(cache.occupancy(), ref.size());
    }
}

// ---------------------------------------------------------------------
// Data cache

struct CacheOrgParam
{
    CacheOrg org;
    const char *name;
};

class DataCacheOrgTest : public ::testing::TestWithParam<CacheOrgParam>
{
  protected:
    DataCacheConfig
    makeConfig(u32 ways = 1)
    {
        DataCacheConfig config;
        config.sizeBytes = 4 * 1024;
        config.lineBytes = 32;
        config.ways = ways;
        config.org = GetParam().org;
        return config;
    }

    std::optional<vm::PAddr>
    pa(vm::VAddr va)
    {
        // Identity-ish translation with a frame offset so virtual and
        // physical indexes differ.
        return vm::PAddr(va.raw() + 0x100000);
    }

    stats::Group root{"test"};
};

TEST_P(DataCacheOrgTest, MissThenHit)
{
    DataCache cache(makeConfig(), &root);
    const vm::VAddr va(0x5000);
    EXPECT_FALSE(cache.access(va, pa(va), false));
    cache.fill(va, *pa(va), false);
    EXPECT_TRUE(cache.access(va, pa(va), false));
    EXPECT_EQ(cache.hits.value(), 1u);
    EXPECT_EQ(cache.misses.value(), 1u);
}

TEST_P(DataCacheOrgTest, SameLineSharedAcrossWords)
{
    DataCache cache(makeConfig(), &root);
    const vm::VAddr va(0x5000);
    cache.fill(va, *pa(va), false);
    EXPECT_TRUE(cache.access(va + 8, pa(va + 8), false));
    EXPECT_FALSE(cache.access(va + 32, pa(va + 32), false));
}

TEST_P(DataCacheOrgTest, StoreMakesLineDirtyAndWritebackOnEvict)
{
    // Direct-mapped: two addresses one cache-size apart collide.
    DataCache cache(makeConfig(1), &root);
    const vm::VAddr a(0x0), b(0x1000); // 4KB apart = same index
    cache.fill(a, *pa(a), true); // dirty
    auto victim = cache.fill(b, *pa(b), false);
    ASSERT_TRUE(victim.has_value());
    EXPECT_TRUE(victim->dirty);
    EXPECT_EQ(cache.writebacks.value(), 1u);
}

TEST_P(DataCacheOrgTest, CleanEvictionNeedsNoWriteback)
{
    DataCache cache(makeConfig(1), &root);
    const vm::VAddr a(0x0), b(0x1000);
    cache.fill(a, *pa(a), false);
    auto victim = cache.fill(b, *pa(b), false);
    ASSERT_TRUE(victim.has_value());
    EXPECT_FALSE(victim->dirty);
}

TEST_P(DataCacheOrgTest, FlushPageRemovesAllItsLines)
{
    DataCache cache(makeConfig(2), &root);
    const vm::VAddr page(0x4000);
    for (u64 off = 0; off < vm::kPageBytes; off += 32)
        cache.fill(page + off, *pa(page + off), off == 0);
    EXPECT_EQ(cache.occupancy(), vm::kPageBytes / 32);

    const vm::Vpn vpn = vm::pageOf(page);
    const vm::Pfn pfn(pa(page)->raw() >> vm::kPageShift);
    const FlushResult result = cache.flushPage(vpn, pfn);
    EXPECT_EQ(result.lineAccesses, vm::kPageBytes / 32);
    EXPECT_EQ(result.invalidated, vm::kPageBytes / 32);
    EXPECT_EQ(result.writebacks, 1u);
    EXPECT_EQ(cache.occupancy(), 0u);
}

TEST_P(DataCacheOrgTest, FlushPageLeavesOtherPagesAlone)
{
    DataCache cache(makeConfig(2), &root);
    const vm::VAddr a(0x4000), b(0x8000);
    cache.fill(a, *pa(a), false);
    cache.fill(b, *pa(b), false);
    cache.flushPage(vm::pageOf(a), vm::Pfn(pa(a)->raw() >> vm::kPageShift));
    EXPECT_FALSE(cache.access(a, pa(a), false));
    EXPECT_TRUE(cache.access(b, pa(b), false));
}

TEST_P(DataCacheOrgTest, FlushAllEmptiesCache)
{
    DataCache cache(makeConfig(2), &root);
    for (u64 i = 0; i < 8; ++i) {
        const vm::VAddr va(i * 64);
        cache.fill(va, *pa(va), i % 2 == 0);
    }
    const FlushResult result = cache.flushAll();
    EXPECT_EQ(result.invalidated, 8u);
    EXPECT_EQ(result.writebacks, 4u);
    EXPECT_EQ(cache.occupancy(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Orgs, DataCacheOrgTest,
    ::testing::Values(CacheOrgParam{CacheOrg::Vivt, "vivt"},
                      CacheOrgParam{CacheOrg::Vipt, "vipt"},
                      CacheOrgParam{CacheOrg::Pipt, "pipt"}),
    [](const ::testing::TestParamInfo<CacheOrgParam> &info) {
        return info.param.name;
    });

TEST(DataCacheTest, VivtNeedsNoPhysicalAddress)
{
    stats::Group root("test");
    DataCacheConfig config;
    config.org = CacheOrg::Vivt;
    DataCache cache(config, &root);
    EXPECT_FALSE(cache.access(vm::VAddr(0x100), std::nullopt, false));
}

TEST(DataCacheDeathTest, ViptRequiresPhysicalAddress)
{
    stats::Group root("test");
    DataCacheConfig config;
    config.org = CacheOrg::Vipt;
    DataCache cache(config, &root);
    EXPECT_DEATH(cache.access(vm::VAddr(0x100), std::nullopt, false),
                 "physical address");
}

TEST(DataCacheTest, VivtSharingHitsAcrossDomainsAtSameAddress)
{
    // The paper's Section 2.2 point: in a single address space the
    // same virtual address means the same data, so one domain's cached
    // line serves another domain with no flush and no ASID.
    stats::Group root("test");
    DataCacheConfig config;
    config.org = CacheOrg::Vivt;
    DataCache cache(config, &root);
    const vm::VAddr shared(0x9000);
    cache.fill(shared, vm::PAddr(0x59000), false); // domain A misses
    EXPECT_TRUE(cache.access(shared, std::nullopt, false)); // domain B hits
}

TEST(DataCacheTest, ContainsVirtualLineReflectsContents)
{
    stats::Group root("test");
    DataCacheConfig config;
    DataCache cache(config, &root);
    const vm::VAddr va(0x2000);
    EXPECT_FALSE(cache.containsVirtualLine(va.raw() / config.lineBytes));
    cache.fill(va, vm::PAddr(0x72000), false);
    EXPECT_TRUE(cache.containsVirtualLine(va.raw() / config.lineBytes));
}
