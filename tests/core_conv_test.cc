/**
 * @file
 * Behavioural tests for the conventional (multiple-address-space)
 * baseline: ASID replication, purge-on-switch, per-domain rights in
 * the TLB (Section 3.1).
 */

#include <gtest/gtest.h>

#include "core/system.hh"

using namespace sasos;
using namespace sasos::core;

class ConvSystemTest : public ::testing::Test
{
  protected:
    ConvSystemTest() : sys_(SystemConfig::conventionalSystem())
    {
        a_ = sys_.kernel().createDomain("a");
        b_ = sys_.kernel().createDomain("b");
    }

    vm::SegmentId
    makeShared(u64 pages, vm::Access a_rights, vm::Access b_rights)
    {
        const vm::SegmentId seg = sys_.kernel().createSegment("s", pages);
        if (a_rights != vm::Access::None)
            sys_.kernel().attach(a_, seg, a_rights);
        if (b_rights != vm::Access::None)
            sys_.kernel().attach(b_, seg, b_rights);
        return seg;
    }

    vm::VAddr
    baseOf(vm::SegmentId seg)
    {
        return sys_.state().segments.find(seg)->base();
    }

    ConventionalSystem &model() { return *sys_.conventionalSystem(); }

    core::System sys_;
    os::DomainId a_ = 0;
    os::DomainId b_ = 0;
};

TEST_F(ConvSystemTest, SharingReplicatesTlbEntries)
{
    // Section 3.1: "Sharing of a page by multiple domains causes
    // replication of TLB protection entries, even though each
    // replicated entry has the same translation information."
    const vm::SegmentId seg =
        makeShared(1, vm::Access::ReadWrite, vm::Access::Read);
    const vm::VAddr base = baseOf(seg);
    sys_.kernel().switchTo(a_);
    sys_.load(base);
    EXPECT_EQ(model().tlb().occupancy(), 1u);
    sys_.kernel().switchTo(b_);
    sys_.load(base);
    EXPECT_EQ(model().tlb().occupancy(), 2u); // replica per domain
}

TEST_F(ConvSystemTest, ReplicasCarryPerDomainRights)
{
    const vm::SegmentId seg =
        makeShared(1, vm::Access::ReadWrite, vm::Access::Read);
    const vm::VAddr base = baseOf(seg);
    sys_.kernel().switchTo(a_);
    EXPECT_TRUE(sys_.store(base));
    sys_.kernel().switchTo(b_);
    EXPECT_TRUE(sys_.load(base));
    EXPECT_FALSE(sys_.store(base));
}

TEST_F(ConvSystemTest, AsidSwitchKeepsTlbContents)
{
    const vm::SegmentId seg =
        makeShared(2, vm::Access::ReadWrite, vm::Access::ReadWrite);
    const vm::VAddr base = baseOf(seg);
    sys_.kernel().switchTo(a_);
    sys_.touchRange(base, 2 * vm::kPageBytes);
    const std::size_t occupancy = model().tlb().occupancy();
    sys_.kernel().switchTo(b_);
    EXPECT_EQ(model().tlb().occupancy(), occupancy);
}

TEST_F(ConvSystemTest, PurgeOnSwitchDiscardsEverything)
{
    // Section 3.1: purging removes protection AND translation state,
    // "the translation information, which is the same for all
    // domains".
    SystemConfig config = SystemConfig::purgingConventionalSystem();
    core::System sys(config);
    auto &kernel = sys.kernel();
    const os::DomainId a = kernel.createDomain("a");
    const os::DomainId b = kernel.createDomain("b");
    const vm::SegmentId seg = kernel.createSegment("s", 2);
    kernel.attach(a, seg, vm::Access::ReadWrite);
    kernel.attach(b, seg, vm::Access::ReadWrite);
    const vm::VAddr base = sys.state().segments.find(seg)->base();

    kernel.switchTo(a);
    sys.touchRange(base, 2 * vm::kPageBytes);
    EXPECT_GT(sys.conventionalSystem()->tlb().occupancy(), 0u);
    kernel.switchTo(b);
    EXPECT_EQ(sys.conventionalSystem()->tlb().occupancy(), 0u);
    EXPECT_EQ(sys.conventionalSystem()->switchPurges.value(), 1u);

    // b must re-fill entries for translations a already had.
    const u64 refills_before =
        sys.account().byCategory(CostCategory::Refill).count();
    sys.load(base);
    EXPECT_GT(sys.account().byCategory(CostCategory::Refill).count(),
              refills_before);
}

TEST_F(ConvSystemTest, PurgeModeStillEnforcesRights)
{
    SystemConfig config = SystemConfig::purgingConventionalSystem();
    core::System sys(config);
    auto &kernel = sys.kernel();
    const os::DomainId a = kernel.createDomain("a");
    const os::DomainId b = kernel.createDomain("b");
    const vm::SegmentId seg = kernel.createSegment("s", 1);
    kernel.attach(a, seg, vm::Access::ReadWrite);
    kernel.attach(b, seg, vm::Access::Read);
    const vm::VAddr base = sys.state().segments.find(seg)->base();
    kernel.switchTo(a);
    EXPECT_TRUE(sys.store(base));
    kernel.switchTo(b);
    EXPECT_FALSE(sys.store(base));
    EXPECT_TRUE(sys.load(base));
    kernel.switchTo(a);
    EXPECT_TRUE(sys.store(base));
}

TEST_F(ConvSystemTest, PerDomainRightsChangeUpdatesOneReplica)
{
    const vm::SegmentId seg =
        makeShared(1, vm::Access::ReadWrite, vm::Access::ReadWrite);
    const vm::VAddr base = baseOf(seg);
    sys_.kernel().switchTo(a_);
    sys_.load(base);
    sys_.kernel().switchTo(b_);
    sys_.load(base);

    sys_.kernel().setPageRights(a_, vm::pageOf(base), vm::Access::Read);
    // b's replica is untouched.
    sys_.kernel().switchTo(b_);
    EXPECT_TRUE(sys_.store(base));
    sys_.kernel().switchTo(a_);
    EXPECT_FALSE(sys_.store(base));
}

TEST_F(ConvSystemTest, AllDomainRestrictPurgesAllReplicas)
{
    const vm::SegmentId seg =
        makeShared(1, vm::Access::ReadWrite, vm::Access::ReadWrite);
    const vm::VAddr base = baseOf(seg);
    sys_.kernel().switchTo(a_);
    sys_.load(base);
    sys_.kernel().switchTo(b_);
    sys_.load(base);
    const u64 purged_before = model().tlb().purgedEntries.value();
    sys_.kernel().restrictPage(vm::pageOf(base), vm::Access::None);
    EXPECT_EQ(model().tlb().purgedEntries.value(), purged_before + 2);
    EXPECT_FALSE(sys_.load(base));
    sys_.kernel().switchTo(a_);
    EXPECT_FALSE(sys_.load(base));
}

TEST_F(ConvSystemTest, DetachPurgesDomainEntriesInRange)
{
    const vm::SegmentId seg =
        makeShared(2, vm::Access::ReadWrite, vm::Access::ReadWrite);
    const vm::VAddr base = baseOf(seg);
    sys_.kernel().switchTo(a_);
    sys_.touchRange(base, 2 * vm::kPageBytes);
    sys_.kernel().switchTo(b_);
    sys_.touchRange(base, 2 * vm::kPageBytes);

    sys_.kernel().detach(a_, seg);
    EXPECT_EQ(model().tlb().occupancy(), 2u); // b's replicas remain
    sys_.kernel().switchTo(a_);
    EXPECT_FALSE(sys_.load(base));
    sys_.kernel().switchTo(b_);
    EXPECT_TRUE(sys_.load(base));
}

TEST_F(ConvSystemTest, DomainDestructionPurgesItsAsid)
{
    const vm::SegmentId seg =
        makeShared(1, vm::Access::ReadWrite, vm::Access::ReadWrite);
    const vm::VAddr base = baseOf(seg);
    sys_.kernel().switchTo(b_);
    sys_.load(base);
    sys_.kernel().switchTo(a_);
    sys_.load(base);
    sys_.kernel().destroyDomain(b_);
    EXPECT_EQ(model().tlb().occupancy(), 1u);
}

TEST_F(ConvSystemTest, UnmapPurgesAndFlushes)
{
    const vm::SegmentId seg =
        makeShared(1, vm::Access::ReadWrite, vm::Access::ReadWrite);
    const vm::VAddr base = baseOf(seg);
    sys_.kernel().switchTo(a_);
    sys_.store(base);
    sys_.kernel().switchTo(b_);
    sys_.load(base);
    sys_.kernel().unmapPage(vm::pageOf(base));
    EXPECT_EQ(model().tlb().occupancy(), 0u);
    EXPECT_EQ(model().cache().occupancy(), 0u);
}

TEST_F(ConvSystemTest, EffectiveRightsMatchCanonical)
{
    const vm::SegmentId seg =
        makeShared(2, vm::Access::ReadWrite, vm::Access::Read);
    const vm::Vpn vpn = sys_.state().segments.find(seg)->firstPage;
    EXPECT_EQ(model().effectiveRights(a_, vpn),
              sys_.kernel().canonicalRights(a_, vpn));
    EXPECT_EQ(model().effectiveRights(b_, vpn),
              sys_.kernel().canonicalRights(b_, vpn));
}
