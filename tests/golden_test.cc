/**
 * @file
 * Golden-replay regression test: a small checked-in trace replayed
 * exactly, on every architecture, against a checked-in snapshot of
 * the replay outcome and full statistics dump.
 *
 * Any change to reference handling, fault resolution, cost charging
 * or stats layout shows up as a diff here. When the change is
 * intentional, regenerate the snapshot:
 *
 *   SASOS_GOLDEN_REGEN=1 ./golden_test
 *
 * and commit the updated tests/data/golden_expected.txt (and
 * golden_stats.json for the machine-readable snapshot).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/mc/mc_system.hh"
#include "scenario/runner.hh"
#include "scenario/scenario.hh"
#include "trace/trace.hh"

using namespace sasos;

namespace
{

std::string
dataPath(const char *name)
{
    return std::string(SASOS_TEST_DATA_DIR) + "/" + name;
}

/** The golden scenario: two domains with asymmetric rights over two
 * 4-page segments. The trace was written against these bases. */
struct GoldenScenario
{
    os::DomainId a = 0;
    os::DomainId b = 0;
};

GoldenScenario
setupGolden(core::System &sys)
{
    GoldenScenario scenario;
    auto &kernel = sys.kernel();
    scenario.a = kernel.createDomain("a");
    scenario.b = kernel.createDomain("b");
    const vm::SegmentId seg1 = kernel.createSegment("code-heap", 4);
    const vm::SegmentId seg2 = kernel.createSegment("shared", 4);
    // The trace addresses assume this layout; fail loudly if the
    // allocator ever places segments differently.
    EXPECT_EQ(sys.state().segments.find(seg1)->base().raw(), 0x100000u);
    EXPECT_EQ(sys.state().segments.find(seg2)->base().raw(), 0x104000u);
    kernel.attach(scenario.a, seg1, vm::Access::ReadWrite);
    kernel.attach(scenario.a, seg2, vm::Access::Read);
    kernel.attach(scenario.b, seg1, vm::Access::Read);
    kernel.attach(scenario.b, seg2, vm::Access::All);
    return scenario;
}

/** Convert the checked-in text trace to a temporary binary trace. */
std::string
binaryGoldenTrace()
{
    const std::string out =
        (std::filesystem::temp_directory_path() / "golden.trc").string();
    std::ifstream in(dataPath("golden.trace.txt"));
    EXPECT_TRUE(in.good()) << "missing " << dataPath("golden.trace.txt");
    trace::TraceWriter writer(out);
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        writer.append(trace::fromText(line));
    }
    return out;
}

} // namespace

TEST(GoldenReplayTest, MatchesCheckedInSnapshot)
{
    const std::string trace_path = binaryGoldenTrace();

    std::ostringstream actual;
    for (core::ModelKind kind :
         {core::ModelKind::Plb, core::ModelKind::PageGroup,
          core::ModelKind::Conventional, core::ModelKind::Pkey}) {
        core::System sys(core::SystemConfig::forModel(kind));
        const GoldenScenario scenario = setupGolden(sys);
        trace::TraceReader reader(trace_path);
        const trace::ReplayResult result = trace::replay(
            sys, reader, {{1, scenario.a}, {2, scenario.b}});
        actual << "==== " << core::toString(kind) << " ====\n";
        actual << "records " << result.records << " references "
               << result.references << " switches " << result.switches
               << " failed " << result.failedReferences << "\n";
        sys.dumpStats(actual);
        actual << "\n";
    }
    std::remove(trace_path.c_str());

    const std::string expected_path = dataPath("golden_expected.txt");
    if (std::getenv("SASOS_GOLDEN_REGEN") != nullptr) {
        std::ofstream out(expected_path);
        out << actual.str();
        GTEST_SKIP() << "regenerated " << expected_path;
    }

    std::ifstream in(expected_path);
    ASSERT_TRUE(in.good())
        << "missing " << expected_path
        << "; run with SASOS_GOLDEN_REGEN=1 to create it";
    std::stringstream expected;
    expected << in.rdbuf();
    EXPECT_EQ(actual.str(), expected.str())
        << "golden replay diverged; if intentional, regenerate with "
           "SASOS_GOLDEN_REGEN=1";
}

/** The same golden replay, snapshotted through the machine-readable
 * stats exporter: any change to the stats tree layout, the JSON
 * emitter or the cycle accounting shows up as a diff against
 * tests/data/golden_stats.json. */
TEST(GoldenReplayTest, StatsJsonMatchesCheckedInSnapshot)
{
    const std::string trace_path = binaryGoldenTrace();

    std::ostringstream actual;
    actual << "[\n";
    bool first = true;
    for (core::ModelKind kind :
         {core::ModelKind::Plb, core::ModelKind::PageGroup,
          core::ModelKind::Conventional, core::ModelKind::Pkey}) {
        core::System sys(core::SystemConfig::forModel(kind));
        const GoldenScenario scenario = setupGolden(sys);
        trace::TraceReader reader(trace_path);
        trace::replay(sys, reader, {{1, scenario.a}, {2, scenario.b}});
        if (!first)
            actual << ",\n";
        first = false;
        sys.dumpStatsJson(actual);
    }
    actual << "\n]\n";
    std::remove(trace_path.c_str());

    const std::string expected_path = dataPath("golden_stats.json");
    if (std::getenv("SASOS_GOLDEN_REGEN") != nullptr) {
        std::ofstream out(expected_path);
        out << actual.str();
        GTEST_SKIP() << "regenerated " << expected_path;
    }

    std::ifstream in(expected_path);
    ASSERT_TRUE(in.good())
        << "missing " << expected_path
        << "; run with SASOS_GOLDEN_REGEN=1 to create it";
    std::stringstream expected;
    expected << in.rdbuf();
    EXPECT_EQ(actual.str(), expected.str())
        << "golden stats JSON diverged; if intentional, regenerate "
           "with SASOS_GOLDEN_REGEN=1";
}

/** The three application scenarios (CoW fork tree, portal RPC chains,
 * server-style mix) replayed on every model, snapshotted through the
 * stats exporter plus the replay tallies: any change to the scenario
 * builders, the CoW fault path, portal attachment wiring or cost
 * charging shows up as a diff against
 * tests/data/golden_scenario_stats.json. Regenerate (and review the
 * diff!) with SASOS_GOLDEN_REGEN=1 after intentional changes. */
TEST(GoldenReplayTest, ScenarioStatsJsonMatchesCheckedInSnapshot)
{
    const std::vector<scn::Script> scripts = scn::standardScripts(1);

    std::ostringstream actual;
    actual << "[\n";
    bool first = true;
    for (const scn::Script &script : scripts) {
        for (core::ModelKind kind :
             {core::ModelKind::Plb, core::ModelKind::PageGroup,
              core::ModelKind::Conventional, core::ModelKind::Pkey}) {
            core::System sys(core::SystemConfig::forModel(kind));
            const scn::RunStats tally = scn::runScript(sys, script);
            EXPECT_EQ(tally.refs, script.refs) << script.name;
            if (!first)
                actual << ",\n";
            first = false;
            actual << "{\"scenario\": \"" << script.name
                   << "\", \"refs\": " << tally.refs
                   << ", \"allowed\": " << tally.allowed
                   << ", \"denied\": " << tally.denied << ",\n\"stats\": ";
            sys.dumpStatsJson(actual);
            actual << "}";
        }
    }
    actual << "\n]\n";

    const std::string expected_path = dataPath("golden_scenario_stats.json");
    if (std::getenv("SASOS_GOLDEN_REGEN") != nullptr) {
        std::ofstream out(expected_path);
        out << actual.str();
        GTEST_SKIP() << "regenerated " << expected_path;
    }

    std::ifstream in(expected_path);
    ASSERT_TRUE(in.good())
        << "missing " << expected_path
        << "; run with SASOS_GOLDEN_REGEN=1 to create it";
    std::stringstream expected;
    expected << in.rdbuf();
    EXPECT_EQ(actual.str(), expected.str())
        << "golden scenario stats diverged; if intentional, regenerate "
           "with SASOS_GOLDEN_REGEN=1";
}

/** A fixed 4-core multi-core run per model, snapshotted through the
 * stats exporter: the interleaving schedule, the IPI delay model, the
 * shootdown accounting and the per-core stats layout are all pinned
 * by tests/data/golden_mc_stats.json. Regenerate (and review the
 * diff!) with SASOS_GOLDEN_REGEN=1 after intentional changes. */
TEST(GoldenReplayTest, McStatsJsonMatchesCheckedInSnapshot)
{
    std::ostringstream actual;
    actual << "[\n";
    bool first = true;
    for (core::ModelKind kind :
         {core::ModelKind::Plb, core::ModelKind::PageGroup,
          core::ModelKind::Conventional, core::ModelKind::Pkey}) {
        core::mc::McConfig config;
        config.system = core::SystemConfig::forModel(kind);
        config.cores = 4;
        config.workload.stepsPerCore = 300;
        config.workload.churnProb = 0.1;
        config.workload.seed = 5;
        core::mc::McSystem engine(config);
        const core::mc::McResult result = engine.run();
        EXPECT_EQ(result.invariantViolations, 0u)
            << core::toString(kind) << ": " << result.firstViolation;
        EXPECT_EQ(result.hwViolations, 0u)
            << core::toString(kind) << ": " << result.firstViolation;
        if (!first)
            actual << ",\n";
        first = false;
        engine.dumpStatsJson(actual);
    }
    actual << "\n]\n";

    const std::string expected_path = dataPath("golden_mc_stats.json");
    if (std::getenv("SASOS_GOLDEN_REGEN") != nullptr) {
        std::ofstream out(expected_path);
        out << actual.str();
        GTEST_SKIP() << "regenerated " << expected_path;
    }

    std::ifstream in(expected_path);
    ASSERT_TRUE(in.good())
        << "missing " << expected_path
        << "; run with SASOS_GOLDEN_REGEN=1 to create it";
    std::stringstream expected;
    expected << in.rdbuf();
    EXPECT_EQ(actual.str(), expected.str())
        << "golden multi-core stats diverged; if intentional, "
           "regenerate with SASOS_GOLDEN_REGEN=1";
}
