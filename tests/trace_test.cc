/**
 * @file
 * Tests for trace recording, round-tripping and replay.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "trace/trace.hh"

using namespace sasos;
using namespace sasos::trace;

namespace
{

std::string
tempTracePath(const char *name)
{
    return (std::filesystem::temp_directory_path() / name).string();
}

} // namespace

TEST(TraceTest, BinaryRoundTrip)
{
    const std::string path = tempTracePath("roundtrip.trc");
    std::vector<TraceRecord> records = {
        {TraceOp::Load, 1, 0x1000},
        {TraceOp::Store, 2, 0xdeadbeef000},
        {TraceOp::IFetch, 1, 0x400000},
        {TraceOp::Switch, 2, 0},
    };
    {
        TraceWriter writer(path);
        for (const TraceRecord &record : records)
            writer.append(record);
        EXPECT_EQ(writer.count(), records.size());
    }
    TraceReader reader(path);
    EXPECT_EQ(reader.count(), records.size());
    TraceRecord record;
    for (const TraceRecord &expected : records) {
        ASSERT_TRUE(reader.next(record));
        EXPECT_EQ(record, expected);
    }
    EXPECT_FALSE(reader.next(record));
    std::remove(path.c_str());
}

TEST(TraceTest, HeaderCountPatchedOnClose)
{
    const std::string path = tempTracePath("count.trc");
    {
        TraceWriter writer(path);
        writer.append(TraceOp::Load, 1, vm::VAddr(0x10));
        writer.append(TraceOp::Load, 1, vm::VAddr(0x20));
    }
    TraceReader reader(path);
    EXPECT_EQ(reader.count(), 2u);
    std::remove(path.c_str());
}

TEST(TraceTest, TextRoundTrip)
{
    const TraceRecord record{TraceOp::Store, 7, 0xabc000};
    const std::string line = toText(record);
    EXPECT_EQ(line, "store d=7 0xabc000");
    EXPECT_EQ(fromText(line), record);

    const TraceRecord sw{TraceOp::Switch, 3, 0};
    EXPECT_EQ(fromText(toText(sw)), sw);
}

TEST(TraceTest, OpNames)
{
    EXPECT_STREQ(toString(TraceOp::Load), "load");
    EXPECT_STREQ(toString(TraceOp::Store), "store");
    EXPECT_STREQ(toString(TraceOp::IFetch), "ifetch");
    EXPECT_STREQ(toString(TraceOp::Switch), "switch");
}

TEST(TraceDeathTest, RejectsNonTraceFile)
{
    const std::string path = tempTracePath("nottrace.bin");
    {
        std::FILE *f = std::fopen(path.c_str(), "wb");
        std::fputs("this is not a trace at all, sorry!!", f);
        std::fclose(f);
    }
    EXPECT_EXIT(TraceReader reader(path),
                ::testing::ExitedWithCode(1), "not a sasos trace");
    std::remove(path.c_str());
}

TEST(TraceDeathTest, RejectsMissingHeader)
{
    const std::string path = tempTracePath("shortheader.trc");
    {
        std::FILE *f = std::fopen(path.c_str(), "wb");
        std::fwrite("SASTRC", 1, 6, f); // shorter than a header
        std::fclose(f);
    }
    EXPECT_EXIT(TraceReader reader(path),
                ::testing::ExitedWithCode(1), "has no header");
    std::remove(path.c_str());
}

TEST(TraceDeathTest, RejectsTruncatedPayload)
{
    const std::string path = tempTracePath("truncated.trc");
    {
        TraceWriter writer(path);
        for (u64 i = 0; i < 8; ++i)
            writer.append(TraceOp::Load, 1, vm::VAddr(i * 0x1000));
    }
    // Chop the last record in half.
    std::filesystem::resize_file(path,
                                 std::filesystem::file_size(path) - 8);
    EXPECT_EXIT(TraceReader reader(path),
                ::testing::ExitedWithCode(1), "truncated or corrupt");
    std::remove(path.c_str());
}

TEST(TraceDeathTest, RejectsTrailingGarbage)
{
    const std::string path = tempTracePath("trailing.trc");
    {
        TraceWriter writer(path);
        writer.append(TraceOp::Load, 1, vm::VAddr(0x1000));
    }
    {
        std::FILE *f = std::fopen(path.c_str(), "ab");
        std::fputs("junk", f);
        std::fclose(f);
    }
    EXPECT_EXIT(TraceReader reader(path),
                ::testing::ExitedWithCode(1), "truncated or corrupt");
    std::remove(path.c_str());
}

TEST(TraceDeathTest, RejectsOverpromisedCount)
{
    const std::string path = tempTracePath("overcount.trc");
    {
        TraceWriter writer(path);
        writer.append(TraceOp::Load, 1, vm::VAddr(0x1000));
    }
    {
        // Patch the header to promise far more records than exist.
        std::FILE *f = std::fopen(path.c_str(), "rb+");
        std::fseek(f, 8, SEEK_SET);
        const u64 bogus = 1'000'000;
        std::fwrite(&bogus, sizeof(bogus), 1, f);
        std::fclose(f);
    }
    EXPECT_EXIT(TraceReader reader(path),
                ::testing::ExitedWithCode(1), "truncated or corrupt");
    std::remove(path.c_str());
}

TEST(TraceDeathTest, RejectsBadOpcode)
{
    const std::string path = tempTracePath("badop.trc");
    {
        TraceWriter writer(path);
        writer.append(TraceOp::Load, 1, vm::VAddr(0x1000));
        writer.append(TraceOp::Load, 1, vm::VAddr(0x2000));
    }
    {
        // Corrupt the second record's op byte (header is 16 bytes,
        // each record 16).
        std::FILE *f = std::fopen(path.c_str(), "rb+");
        std::fseek(f, 16 + 16, SEEK_SET);
        std::fputc(0x7f, f);
        std::fclose(f);
    }
    EXPECT_EXIT(
        {
            TraceReader reader(path);
            TraceRecord record;
            while (reader.next(record)) {
            }
        },
        ::testing::ExitedWithCode(1), "bad op");
    std::remove(path.c_str());
}

TEST(TraceTest, ReplayObserverSeesEveryReference)
{
    const std::string path = tempTracePath("observer.trc");
    core::System sys(core::SystemConfig::plbSystem());
    auto &kernel = sys.kernel();
    const os::DomainId a = kernel.createDomain("a");
    const vm::SegmentId seg = kernel.createSegment("s", 4);
    kernel.attach(a, seg, vm::Access::Read);
    const vm::VAddr base = sys.state().segments.find(seg)->base();
    {
        TraceWriter writer(path);
        writer.append(TraceOp::Switch, 1, vm::VAddr(0));
        writer.append(TraceOp::Load, 1, base);
        writer.append(TraceOp::Store, 1, base); // denied: read-only
        writer.append(TraceOp::Load, 1, base + vm::kPageBytes);
    }
    std::vector<bool> decisions;
    TraceReader reader(path);
    const ReplayResult result = replay(
        sys, reader, {{1, a}},
        [&](const TraceRecord &, bool ok) { decisions.push_back(ok); });
    EXPECT_EQ(result.references, 3u);
    // Switches are not reported; outcomes arrive in trace order.
    ASSERT_EQ(decisions.size(), 3u);
    EXPECT_TRUE(decisions[0]);
    EXPECT_FALSE(decisions[1]);
    EXPECT_TRUE(decisions[2]);
    std::remove(path.c_str());
}

TEST(TraceTest, ReplayDrivesTheSystem)
{
    const std::string path = tempTracePath("replay.trc");

    // Build a scenario on one system while recording it, then replay
    // the trace on a fresh system of a different model and check the
    // reference stream behaves identically at the OS level.
    core::SystemConfig config = core::SystemConfig::plbSystem();
    core::System sys(config);
    auto &kernel = sys.kernel();
    const os::DomainId a = kernel.createDomain("a");
    const os::DomainId b = kernel.createDomain("b");
    const vm::SegmentId seg = kernel.createSegment("s", 4);
    kernel.attach(a, seg, vm::Access::ReadWrite);
    kernel.attach(b, seg, vm::Access::Read);
    const vm::VAddr base = sys.state().segments.find(seg)->base();

    {
        TraceWriter writer(path);
        writer.append(TraceOp::Switch, 1, vm::VAddr(0));
        for (u64 p = 0; p < 4; ++p)
            writer.append(TraceOp::Store, 1, base + p * vm::kPageBytes);
        writer.append(TraceOp::Switch, 2, vm::VAddr(0));
        for (u64 p = 0; p < 4; ++p)
            writer.append(TraceOp::Load, 2, base + p * vm::kPageBytes);
        writer.append(TraceOp::Store, 2, base); // will be denied
    }

    TraceReader reader(path);
    const ReplayResult result =
        replay(sys, reader, {{1, a}, {2, b}});
    EXPECT_EQ(result.records, 11u);
    EXPECT_EQ(result.references, 9u);
    EXPECT_EQ(result.switches, 2u);
    EXPECT_EQ(result.failedReferences, 1u); // b's store
    std::remove(path.c_str());
}

TEST(TraceTest, ReplayIsModelIndependentAtTheOsLevel)
{
    const std::string path = tempTracePath("replay2.trc");
    {
        TraceWriter writer(path);
        Rng rng(77);
        for (int i = 0; i < 400; ++i) {
            const u16 domain = 1 + static_cast<u16>(rng.nextBelow(2));
            const u64 page = rng.nextBelow(8);
            const TraceOp op =
                rng.bernoulli(0.3) ? TraceOp::Store : TraceOp::Load;
            writer.append(op, domain,
                          vm::VAddr(0x100000 + page * vm::kPageBytes));
        }
    }

    u64 failed[2] = {0, 0};
    int index = 0;
    for (core::ModelKind kind :
         {core::ModelKind::Plb, core::ModelKind::PageGroup}) {
        core::System sys(core::SystemConfig::forModel(kind));
        auto &kernel = sys.kernel();
        const os::DomainId a = kernel.createDomain("a");
        const os::DomainId b = kernel.createDomain("b");
        // Segment covering 0x100000..: created first so the addresses
        // in the trace land inside it (the allocator starts at page
        // 0x100).
        const vm::SegmentId seg = kernel.createSegment("s", 8);
        ASSERT_EQ(sys.state().segments.find(seg)->base().raw(),
                  0x100000u);
        kernel.attach(a, seg, vm::Access::ReadWrite);
        kernel.attach(b, seg, vm::Access::Read);
        TraceReader reader(path);
        const ReplayResult result = replay(sys, reader, {{1, a}, {2, b}});
        failed[index++] = result.failedReferences;
    }
    // The set of canonically denied references is model-independent.
    EXPECT_EQ(failed[0], failed[1]);
    std::remove(path.c_str());
}
