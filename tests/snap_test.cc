/**
 * @file
 * The snapshot/restore subsystem's test suite.
 *
 * The centerpiece is the resume-equivalence oracle: run N references,
 * snapshot, overlay the image onto freshly constructed objects,
 * continue -- and every statistic, simulated cycle and traced event
 * must be bit-identical to the uninterrupted run. That is checked for
 * all four protection models, for a fault-injected machine, and for
 * the four-core multi-core engine (through a file round trip).
 *
 * Around it: snapio primitive round trips, corrupt-image rejection
 * (truncation, bit flips, bad magic/version, hostile lengths, config
 * mismatches -- all clean fatals, rerouted into exceptions here),
 * the protection-key model's kernel key tables (round trip and
 * rejection), stateful stream resume, warm-start sweep identity, the
 * restored counters vs. obs event-stream reconciliation, and a
 * checked-in image at the current format version guarding
 * compatibility (SASOS_GOLDEN_REGEN=1 regenerates it).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <stdexcept>
#include <string>
#include <tuple>
#include <vector>

#include "core/mc/mc_system.hh"
#include "obs/tracer.hh"
#include "scenario/runner.hh"
#include "scenario/scenario.hh"
#include "snap/snapshot.hh"
#include "farm/campaign.hh"
#include "workload/address_stream.hh"

using namespace sasos;

namespace
{

std::string
dataPath(const char *name)
{
    return std::string(SASOS_TEST_DATA_DIR) + "/" + name;
}

/** SASOS_FATAL rerouted into a catchable exception, per test scope. */
struct FatalRejection : std::runtime_error
{
    explicit FatalRejection(const std::string &message)
        : std::runtime_error(message)
    {
    }
};

class ScopedFatalThrow
{
  public:
    ScopedFatalThrow()
    {
        previous_ = setFatalHandler([](const std::string &message) -> void {
            throw FatalRejection(message);
        });
    }
    ~ScopedFatalThrow() { setFatalHandler(previous_); }

  private:
    FatalHandler previous_;
};

constexpr u64 kPages = 64;
constexpr u64 kSeed = 42;

vm::VAddr
setupHeap(core::System &sys, u64 pages = kPages)
{
    const os::DomainId app = sys.kernel().createDomain("app");
    const vm::SegmentId seg = sys.kernel().createSegment("heap", pages);
    sys.kernel().attach(app, seg, vm::Access::ReadWrite);
    sys.kernel().switchTo(app);
    return sys.state().segments.find(seg)->base();
}

std::string
dumpOf(core::System &sys)
{
    std::ostringstream os;
    sys.dumpStats(os);
    return os.str();
}

std::string
dumpOf(core::mc::McSystem &sys)
{
    std::ostringstream os;
    sys.dumpStats(os);
    return os.str();
}

/** An event stripped of its merge-local sequence number: traces from
 * a split run are compared against the uninterrupted one by content,
 * not by where stopTracing() renumbered them. */
using EventEssence = std::tuple<u64, u64, u64, u32, obs::EventKind>;

std::vector<EventEssence>
essenceOf(const std::vector<obs::Event> &events)
{
    std::vector<EventEssence> out;
    out.reserve(events.size());
    for (const obs::Event &event : events)
        out.emplace_back(event.cycle, event.addr, event.arg, event.tid,
                         event.kind);
    return out;
}

std::unique_ptr<wl::AddressStream>
makeWorkingSet(vm::VAddr base, u64 pages)
{
    return std::make_unique<wl::WorkingSetStream>(
        base, pages, pages / 8 ? pages / 8 : 1, 512);
}

struct RunOutcome
{
    std::string stats;
    u64 cycles = 0;
    u64 completed = 0;
    u64 failed = 0;
    std::vector<EventEssence> events;
};

/** The reference run: `total` references, never interrupted. */
RunOutcome
runStraight(const core::SystemConfig &config, u64 total)
{
    obs::setThreadId(1);
    obs::startTracing();
    core::System sys(config);
    const vm::VAddr base = setupHeap(sys);
    Rng rng(kSeed);
    auto stream = makeWorkingSet(base, kPages);
    const core::RunResult run = sys.run(*stream, total, rng);
    RunOutcome out;
    out.events = essenceOf(obs::stopTracing());
    out.stats = dumpOf(sys);
    out.cycles = sys.cycles().count();
    out.completed = run.completed;
    out.failed = run.failed;
    return out;
}

/** The split run: `prefix` references, snapshot, restore onto fresh
 * objects, continue with `rest` more. */
RunOutcome
runSplit(const core::SystemConfig &config, u64 prefix, u64 rest)
{
    obs::setThreadId(1);
    obs::startTracing();
    core::System warm(config);
    const vm::VAddr base = setupHeap(warm);
    Rng rng(kSeed);
    auto stream = makeWorkingSet(base, kPages);
    const core::RunResult first = warm.run(*stream, prefix, rng);

    snap::Snapshotter snapper;
    snapper.add(warm);
    snapper.add(rng);
    snapper.add(*stream);
    const snap::Snapshot image = snapper.finish();
    std::vector<EventEssence> events = essenceOf(obs::stopTracing());

    // Fresh process stand-ins: same construction recipe, different
    // seeds, overlaid from the image.
    obs::setThreadId(1);
    obs::startTracing();
    core::System sys(config);
    setupHeap(sys);
    Rng resumed(kSeed + 999);
    auto resumedStream = makeWorkingSet(base, kPages);
    snap::Restorer restorer(image);
    restorer.restore(sys);
    restorer.restore(resumed);
    restorer.restore(*resumedStream);
    restorer.finish();

    const core::RunResult second = sys.run(*resumedStream, rest, resumed);
    const std::vector<EventEssence> tail = essenceOf(obs::stopTracing());
    events.insert(events.end(), tail.begin(), tail.end());

    RunOutcome out;
    out.events = std::move(events);
    out.stats = dumpOf(sys);
    out.cycles = sys.cycles().count();
    out.completed = first.completed + second.completed;
    out.failed = first.failed + second.failed;
    return out;
}

void
expectResumeEquivalent(const core::SystemConfig &config, u64 total)
{
    const RunOutcome straight = runStraight(config, total);
    const RunOutcome split = runSplit(config, total / 2, total - total / 2);
    EXPECT_EQ(straight.stats, split.stats);
    EXPECT_EQ(straight.cycles, split.cycles);
    EXPECT_EQ(straight.completed, split.completed);
    EXPECT_EQ(straight.failed, split.failed);
    EXPECT_EQ(straight.events, split.events);
}

} // namespace

// ---------------------------------------------------------------------
// snapio primitives

TEST(SnapIoTest, PrimitivesRoundTrip)
{
    snap::SnapWriter writer;
    writer.putTag("hello");
    writer.put8(7);
    writer.put16(0xBEEF);
    writer.put32(0xDEADBEEFu);
    writer.put64(0x0123456789ABCDEFull);
    writer.putBool(true);
    writer.putBool(false);
    writer.putDouble(3.25);
    writer.putString("sasos");
    writer.putString("");

    snap::SnapReader reader(writer.seal());
    reader.expectTag("hello");
    EXPECT_EQ(reader.get8(), 7u);
    EXPECT_EQ(reader.get16(), 0xBEEFu);
    EXPECT_EQ(reader.get32(), 0xDEADBEEFu);
    EXPECT_EQ(reader.get64(), 0x0123456789ABCDEFull);
    EXPECT_TRUE(reader.getBool());
    EXPECT_FALSE(reader.getBool());
    EXPECT_EQ(reader.getDouble(), 3.25);
    EXPECT_EQ(reader.getString(), "sasos");
    EXPECT_EQ(reader.getString(), "");
    EXPECT_EQ(reader.remaining(), 0u);
    reader.finish();
}

TEST(SnapIoTest, TagMismatchIsFatal)
{
    ScopedFatalThrow bridge;
    snap::SnapWriter writer;
    writer.putTag("alpha");
    const std::vector<u8> image = writer.seal();
    snap::SnapReader reader(image);
    EXPECT_THROW(reader.expectTag("beta"), FatalRejection);
}

TEST(SnapIoTest, HostileCountIsFatal)
{
    ScopedFatalThrow bridge;
    snap::SnapWriter writer;
    writer.put64(~u64{0}); // a count promising 2^64-1 elements
    snap::SnapReader reader(writer.seal());
    EXPECT_THROW(reader.getCount(8), FatalRejection);
}

// ---------------------------------------------------------------------
// Resume equivalence: the subsystem's correctness bar

TEST(SnapResumeTest, PlbModel)
{
    expectResumeEquivalent(core::SystemConfig::plbSystem(), 6000);
}

TEST(SnapResumeTest, PageGroupModel)
{
    expectResumeEquivalent(core::SystemConfig::pageGroupSystem(), 6000);
}

TEST(SnapResumeTest, ConventionalModel)
{
    expectResumeEquivalent(core::SystemConfig::conventionalSystem(), 6000);
}

TEST(SnapResumeTest, PkeyModel)
{
    expectResumeEquivalent(core::SystemConfig::pkeySystem(), 6000);
}

TEST(SnapResumeTest, PkeyModelUnderKeyRecycling)
{
    // A key space smaller than the 8 working-set segments the stream
    // touches keeps the recycling machinery hot across the snapshot
    // point; the restored key tables must carry the bindings exactly.
    core::SystemConfig config = core::SystemConfig::pkeySystem();
    config.pkeys = 2;
    expectResumeEquivalent(config, 6000);
}

TEST(SnapResumeTest, FaultInjectedMachine)
{
    core::SystemConfig config = core::SystemConfig::plbSystem();
    config.faults.enabled = true;
    config.faults.seed = 7;
    config.faults.rate = 0.05;
    expectResumeEquivalent(config, 6000);
}

TEST(SnapResumeTest, MidSweepCheckpointEveryQuarter)
{
    // Four checkpoint/restore hops across one run still land
    // bit-identical on the uninterrupted stats.
    const core::SystemConfig config = core::SystemConfig::pageGroupSystem();
    const u64 total = 8000;
    const RunOutcome straight = runStraight(config, total);

    obs::setThreadId(1);
    obs::startTracing();
    auto sys = std::make_unique<core::System>(config);
    const vm::VAddr base = setupHeap(*sys);
    auto rng = std::make_unique<Rng>(kSeed);
    auto stream = makeWorkingSet(base, kPages);
    std::vector<EventEssence> events;
    u64 completed = 0;
    u64 failed = 0;
    for (int hop = 0; hop < 4; ++hop) {
        const core::RunResult run =
            sys->run(*stream, total / 4, *rng);
        completed += run.completed;
        failed += run.failed;

        snap::Snapshotter snapper;
        snapper.add(*sys);
        snapper.add(*rng);
        snapper.add(*stream);
        const snap::Snapshot image = snapper.finish();
        const std::vector<EventEssence> part =
            essenceOf(obs::stopTracing());
        events.insert(events.end(), part.begin(), part.end());

        obs::setThreadId(1);
        obs::startTracing();
        sys = std::make_unique<core::System>(config);
        setupHeap(*sys);
        rng = std::make_unique<Rng>(hop + 1);
        stream = makeWorkingSet(base, kPages);
        snap::Restorer restorer(image);
        restorer.restore(*sys);
        restorer.restore(*rng);
        restorer.restore(*stream);
        restorer.finish();
    }
    const std::vector<EventEssence> part = essenceOf(obs::stopTracing());
    events.insert(events.end(), part.begin(), part.end());

    EXPECT_EQ(straight.stats, dumpOf(*sys));
    EXPECT_EQ(straight.cycles, sys->cycles().count());
    EXPECT_EQ(straight.completed, completed);
    EXPECT_EQ(straight.failed, failed);
    EXPECT_EQ(straight.events, events);
}

// ---------------------------------------------------------------------
// Multi-core engine resume

namespace
{

core::mc::McConfig
mcConfig()
{
    core::mc::McConfig config;
    config.system = core::SystemConfig::plbSystem();
    config.cores = 4;
    config.scheduleSeed = 3;
    config.workload.stepsPerCore = 800;
    config.workload.churnProb = 0.05;
    config.workload.seed = 11;
    config.recordOutcomes = true;
    return config;
}

void
expectSameResult(const core::mc::McResult &a, const core::mc::McResult &b)
{
    EXPECT_EQ(a.slots, b.slots);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.failed, b.failed);
    EXPECT_EQ(a.kernelOps, b.kernelOps);
    EXPECT_EQ(a.shootdowns, b.shootdowns);
    EXPECT_EQ(a.acks, b.acks);
    EXPECT_EQ(a.staleWindowRefs, b.staleWindowRefs);
    EXPECT_EQ(a.staleGrants, b.staleGrants);
    EXPECT_EQ(a.invariantViolations, b.invariantViolations);
    EXPECT_EQ(a.hwViolations, b.hwViolations);
    EXPECT_EQ(a.quiescentChecks, b.quiescentChecks);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.coreCycles, b.coreCycles);
    EXPECT_EQ(a.coreCompleted, b.coreCompleted);
    EXPECT_EQ(a.coreFailed, b.coreFailed);
    EXPECT_EQ(a.quiescentOutcomes, b.quiescentOutcomes);
    EXPECT_EQ(a.coreOutcomes, b.coreOutcomes);
    EXPECT_EQ(a.firstViolation, b.firstViolation);
}

} // namespace

TEST(SnapMcTest, FourCoreResumeThroughFileRoundTrip)
{
    const core::mc::McConfig config = mcConfig();

    core::mc::McSystem straight(config);
    const core::mc::McResult full = straight.run();
    const std::string fullStats = dumpOf(straight);

    // Half the schedule: 4 cores x 800 steps is ~400 quantum-8 turns.
    core::mc::McSystem first(config);
    first.run(200);
    ASSERT_FALSE(first.done())
        << "partial run finished early; shrink max_slots";

    snap::Snapshotter snapper;
    snapper.add(first);
    const std::string path =
        (std::filesystem::temp_directory_path() / "snap_mc_test.snap")
            .string();
    snapper.finish().toFile(path);

    core::mc::McSystem resumed(config);
    snap::Restorer restorer(snap::Snapshot::fromFile(path));
    restorer.restore(resumed);
    restorer.finish();
    std::filesystem::remove(path);

    const core::mc::McResult continued = resumed.run();
    EXPECT_TRUE(resumed.done());
    expectSameResult(full, continued);
    EXPECT_EQ(fullStats, dumpOf(resumed));
}

// ---------------------------------------------------------------------
// Mid-scenario snapshots: fork tree half-built, portals in flight

namespace
{

/** Tally of one (possibly split) scenario replay. */
struct ScenarioOutcome
{
    std::string stats;
    u64 cycles = 0;
    u64 allowed = 0;
    u64 denied = 0;
    std::vector<EventEssence> events;
};

ScenarioOutcome
runScenarioStraight(const core::SystemConfig &config,
                    const scn::Script &script)
{
    obs::setThreadId(1);
    obs::startTracing();
    core::System sys(config);
    const scn::RunStats tally = scn::runScript(sys, script);
    ScenarioOutcome out;
    out.events = essenceOf(obs::stopTracing());
    out.stats = dumpOf(sys);
    out.cycles = sys.cycles().count();
    out.allowed = tally.allowed;
    out.denied = tally.denied;
    return out;
}

/** Replay ops [0, cut), snapshot, restore onto a fresh System, and
 * replay the rest. The runner is stateless, so the op index is the
 * only resume cursor needed. */
ScenarioOutcome
runScenarioSplit(const core::SystemConfig &config,
                 const scn::Script &script, std::size_t cut)
{
    obs::setThreadId(1);
    obs::startTracing();
    core::System warm(config);
    const scn::RunStats first = scn::runScript(warm, script, 0, cut);

    snap::Snapshotter snapper;
    snapper.add(warm);
    const snap::Snapshot image = snapper.finish();
    std::vector<EventEssence> events = essenceOf(obs::stopTracing());

    obs::setThreadId(1);
    obs::startTracing();
    core::System sys(config);
    snap::Restorer restorer(image);
    restorer.restore(sys);
    restorer.finish();
    const scn::RunStats second = scn::runScript(sys, script, cut);
    const std::vector<EventEssence> tail = essenceOf(obs::stopTracing());
    events.insert(events.end(), tail.begin(), tail.end());

    ScenarioOutcome out;
    out.events = std::move(events);
    out.stats = dumpOf(sys);
    out.cycles = sys.cycles().count();
    out.allowed = first.allowed + second.allowed;
    out.denied = first.denied + second.denied;
    return out;
}

/** The op index just past the last ForkCow: the fork tree is fully
 * built and every shared page still awaits its CoW resolution, so the
 * image carries shared frames, elevated refcounts and a nonempty CoW
 * set. Scripts without forks cut mid-stream. */
std::size_t
interestingCut(const scn::Script &script)
{
    for (std::size_t i = script.ops.size(); i > 0; --i)
        if (script.ops[i - 1].kind == scn::OpKind::ForkCow)
            return i;
    return script.ops.size() / 2;
}

void
expectScenarioResumeEquivalent(const core::SystemConfig &config,
                               const scn::Script &script)
{
    const ScenarioOutcome straight = runScenarioStraight(config, script);
    for (const std::size_t cut :
         {interestingCut(script), script.ops.size() / 2,
          script.ops.size() / 3}) {
        const ScenarioOutcome split =
            runScenarioSplit(config, script, cut);
        EXPECT_EQ(straight.stats, split.stats)
            << script.name << " cut at op " << cut;
        EXPECT_EQ(straight.cycles, split.cycles)
            << script.name << " cut at op " << cut;
        EXPECT_EQ(straight.allowed, split.allowed);
        EXPECT_EQ(straight.denied, split.denied);
        EXPECT_EQ(straight.events, split.events)
            << script.name << " cut at op " << cut;
    }
}

} // namespace

TEST(SnapScenarioTest, ForkTreeMidBuildRoundTripsOnEveryModel)
{
    const scn::Script script = scn::buildForkScript(scn::ForkConfig{});
    for (core::ModelKind kind :
         {core::ModelKind::Plb, core::ModelKind::PageGroup,
          core::ModelKind::Conventional, core::ModelKind::Pkey})
        expectScenarioResumeEquivalent(core::SystemConfig::forModel(kind),
                                       script);
}

TEST(SnapScenarioTest, PortalChainsInFlightRoundTrip)
{
    expectScenarioResumeEquivalent(
        core::SystemConfig::plbSystem(),
        scn::buildPortalScript(scn::PortalConfig{}));
}

TEST(SnapScenarioTest, ServerMixMidWaveRoundTrip)
{
    expectScenarioResumeEquivalent(
        core::SystemConfig::plbSystem(),
        scn::buildServerMixScript(scn::ServerMixConfig{}));
}

// ---------------------------------------------------------------------
// Untrusted images: every malformation is a clean fatal

namespace
{

/** A small valid image to deface. */
snap::Snapshot
smallImage()
{
    core::System sys(core::SystemConfig::plbSystem());
    setupHeap(sys, 8);
    Rng rng(1);
    snap::Snapshotter snapper;
    snapper.add(sys);
    snapper.add(rng);
    return snapper.finish();
}

void
expectRejected(const snap::Snapshot &image)
{
    EXPECT_THROW(
        {
            core::System sys(core::SystemConfig::plbSystem());
            setupHeap(sys, 8);
            Rng rng(9);
            snap::Restorer restorer(image);
            restorer.restore(sys);
            restorer.restore(rng);
            restorer.finish();
        },
        FatalRejection);
}

} // namespace

TEST(SnapCorruptionTest, TruncationsAreRejected)
{
    ScopedFatalThrow bridge;
    const snap::Snapshot valid = smallImage();
    for (const std::size_t keep :
         {std::size_t{0}, std::size_t{7}, std::size_t{31}, std::size_t{32},
          valid.bytes.size() / 2, valid.bytes.size() - 1}) {
        snap::Snapshot cut = valid;
        cut.bytes.resize(keep);
        expectRejected(cut);
    }
}

TEST(SnapCorruptionTest, BitFlipsAreRejected)
{
    ScopedFatalThrow bridge;
    const snap::Snapshot valid = smallImage();
    // One flip in the magic, the version, the length, the checksum,
    // and a sweep of payload positions.
    std::vector<std::size_t> positions = {0, 9, 17, 25};
    for (std::size_t at = 32; at < valid.bytes.size();
         at += valid.bytes.size() / 13 + 1)
        positions.push_back(at);
    for (const std::size_t at : positions) {
        snap::Snapshot flipped = valid;
        flipped.bytes[at] ^= 0x10;
        expectRejected(flipped);
    }
}

TEST(SnapCorruptionTest, FutureVersionIsRejected)
{
    ScopedFatalThrow bridge;
    snap::Snapshot valid = smallImage();
    valid.bytes[8] = 0xFF; // version field, little-endian low byte
    expectRejected(valid);
}

TEST(SnapCorruptionTest, HostileLengthIsRejected)
{
    ScopedFatalThrow bridge;
    snap::Snapshot valid = smallImage();
    for (int i = 0; i < 8; ++i)
        valid.bytes[16 + i] = 0xFF; // promises ~2^64 payload bytes
    expectRejected(valid);
}

TEST(SnapCorruptionTest, TrailingBytesAreRejected)
{
    ScopedFatalThrow bridge;
    const snap::Snapshot image = smallImage();
    EXPECT_THROW(
        {
            core::System sys(core::SystemConfig::plbSystem());
            setupHeap(sys, 8);
            snap::Restorer restorer(image);
            restorer.restore(sys);
            // The image still holds the Rng section.
            restorer.finish();
        },
        FatalRejection);
}

TEST(SnapCorruptionTest, ConfigMismatchNamesTheField)
{
    ScopedFatalThrow bridge;
    const snap::Snapshot image = smallImage();
    core::System other(core::SystemConfig::conventionalSystem());
    setupHeap(other, 8);
    snap::Restorer restorer(image);
    try {
        restorer.restore(other);
        FAIL() << "mismatched config was accepted";
    } catch (const FatalRejection &rejection) {
        EXPECT_NE(std::string(rejection.what()).find("model"),
                  std::string::npos)
            << "fatal should name the mismatched field: "
            << rejection.what();
    }
}

TEST(SnapCorruptionTest, MissingFileIsFatal)
{
    ScopedFatalThrow bridge;
    EXPECT_THROW(snap::Snapshot::fromFile("/nonexistent/no.snap"),
                 FatalRejection);
}

// ---------------------------------------------------------------------
// Protection-key kernel tables (the v3 format addition)

namespace
{

/** A pkey machine whose image carries nontrivial key tables: a tight
 * key space keeps recycling hot and a restricted page adds a page-key
 * binding next to the segment keys. */
snap::Snapshot
pkeyImage(core::System &sys, vm::VAddr *base_out = nullptr)
{
    const vm::VAddr base = setupHeap(sys);
    if (base_out != nullptr)
        *base_out = base;
    Rng rng(kSeed);
    auto stream = makeWorkingSet(base, kPages);
    sys.run(*stream, 2000, rng);
    sys.kernel().restrictPage(vm::pageOf(base), vm::Access::Read);
    snap::Snapshotter snapper;
    snapper.add(sys);
    return snapper.finish();
}

} // namespace

TEST(SnapPkeyTest, KeyTablesRoundTrip)
{
    core::SystemConfig config = core::SystemConfig::pkeySystem();
    config.pkeys = 4;
    core::System sys(config);
    vm::VAddr base{0};
    const snap::Snapshot image = pkeyImage(sys, &base);

    core::System restored(config);
    setupHeap(restored);
    snap::Restorer restorer(image);
    restorer.restore(restored);
    restorer.finish();

    // The kernel key tables came back exactly: same bindings for
    // every page (segment keys and the promoted page key alike).
    EXPECT_EQ(restored.pkeySystem()->boundKeys(),
              sys.pkeySystem()->boundKeys());
    for (u64 p = 0; p < kPages; ++p) {
        const vm::Vpn vpn = vm::pageOf(base + p * vm::kPageBytes);
        EXPECT_EQ(restored.pkeySystem()->keyOf(vpn),
                  sys.pkeySystem()->keyOf(vpn))
            << "page " << p;
    }
    EXPECT_EQ(dumpOf(sys), dumpOf(restored));
}

TEST(SnapPkeyTest, CorruptKeyTablesAreRejected)
{
    ScopedFatalThrow bridge;
    core::SystemConfig config = core::SystemConfig::pkeySystem();
    config.pkeys = 4;
    core::System donor(config);
    const snap::Snapshot valid = pkeyImage(donor);

    for (std::size_t at = 32; at < valid.bytes.size();
         at += valid.bytes.size() / 13 + 1) {
        snap::Snapshot flipped = valid;
        flipped.bytes[at] ^= 0x10;
        EXPECT_THROW(
            {
                core::System sys(config);
                setupHeap(sys);
                snap::Restorer restorer(flipped);
                restorer.restore(sys);
                restorer.finish();
            },
            FatalRejection)
            << "flip at byte " << at;
    }
}

TEST(SnapPkeyTest, KeySpaceMismatchNamesTheField)
{
    ScopedFatalThrow bridge;
    core::SystemConfig config = core::SystemConfig::pkeySystem();
    config.pkeys = 4;
    core::System donor(config);
    const snap::Snapshot image = pkeyImage(donor);

    core::SystemConfig wider = core::SystemConfig::pkeySystem();
    wider.pkeys = 8;
    core::System other(wider);
    setupHeap(other);
    snap::Restorer restorer(image);
    try {
        restorer.restore(other);
        FAIL() << "mismatched key space was accepted";
    } catch (const FatalRejection &rejection) {
        EXPECT_NE(std::string(rejection.what()).find("pkeys"),
                  std::string::npos)
            << "fatal should name the mismatched field: "
            << rejection.what();
    }
}

// ---------------------------------------------------------------------
// Stateful streams resume mid-sequence

TEST(SnapStreamTest, SequentialStreamResumes)
{
    const vm::VAddr base{0x100000};
    wl::SequentialStream original(base, 64 * vm::kPageBytes, 64);
    Rng rng(5);
    for (int i = 0; i < 100; ++i)
        original.next(rng);

    snap::Snapshotter snapper;
    snapper.add(original);
    snapper.add(rng);
    const snap::Snapshot image = snapper.finish();

    wl::SequentialStream resumed(base, 64 * vm::kPageBytes, 64);
    Rng resumedRng(77);
    snap::Restorer restorer(image);
    restorer.restore(resumed);
    restorer.restore(resumedRng);
    restorer.finish();

    for (int i = 0; i < 300; ++i)
        EXPECT_EQ(original.next(rng).raw(), resumed.next(resumedRng).raw());
}

TEST(SnapStreamTest, WorkingSetStreamResumes)
{
    const vm::VAddr base{0x100000};
    wl::WorkingSetStream original(base, 64, 8, 512);
    Rng rng(5);
    for (int i = 0; i < 700; ++i)
        original.next(rng);

    snap::Snapshotter snapper;
    snapper.add(original);
    snapper.add(rng);
    const snap::Snapshot image = snapper.finish();

    wl::WorkingSetStream resumed(base, 64, 8, 512);
    Rng resumedRng(77);
    snap::Restorer restorer(image);
    restorer.restore(resumed);
    restorer.restore(resumedRng);
    restorer.finish();

    for (int i = 0; i < 900; ++i)
        EXPECT_EQ(original.next(rng).raw(), resumed.next(resumedRng).raw());
}

// ---------------------------------------------------------------------
// Restored counters reconcile with the observed event stream

TEST(SnapStatsTest, RestoredCountersMatchEventStream)
{
    const core::SystemConfig config = core::SystemConfig::plbSystem();
    const u64 total = 3000;

    obs::setThreadId(1);
    obs::startTracing();
    core::System sys(config);
    const vm::VAddr base = setupHeap(sys);
    Rng rng(kSeed);
    auto stream = makeWorkingSet(base, kPages);
    const core::RunResult run = sys.run(*stream, total, rng);
    const std::vector<obs::Event> events = obs::stopTracing();

    snap::Snapshotter snapper;
    snapper.add(sys);
    const snap::Snapshot image = snapper.finish();

    core::System restored(config);
    setupHeap(restored);
    snap::Restorer restorer(image);
    restorer.restore(restored);
    restorer.finish();

    // The restored scalars are the originals...
    EXPECT_EQ(restored.references.value(), sys.references.value());
    EXPECT_EQ(restored.failedReferences.value(),
              sys.failedReferences.value());
    EXPECT_EQ(dumpOf(sys), dumpOf(restored));

    // ...and they reconcile with what the tracer observed: one
    // access span per issued reference.
    const u64 begins = static_cast<u64>(std::count_if(
        events.begin(), events.end(), [](const obs::Event &event) {
            return event.kind == obs::EventKind::AccessBegin;
        }));
    EXPECT_EQ(restored.references.value(), begins);
    EXPECT_EQ(restored.references.value(), run.completed + run.failed);
}

// ---------------------------------------------------------------------
// Warm-start sweeps: restoring the shared prefix image is invisible

TEST(SnapSweepTest, WarmStartIsBitIdenticalAcrossSeeds)
{
    farm::SweepCell cell;
    cell.model = "plb";
    cell.workload = "zipf";
    cell.config = core::SystemConfig::plbSystem();
    cell.pages = kPages;
    cell.references = 4000;
    cell.warmRefs = 4000;
    cell.warmSeed = 77;
    cell.makeStream = [](vm::VAddr base, u64 pages, u64 seed) {
        return std::make_unique<wl::ZipfPageStream>(base, pages, 0.8,
                                                    seed);
    };

    const auto image = farm::SweepRunner::buildWarmImage(cell);
    for (u64 seed = 1; seed <= 3; ++seed) {
        cell.seed = seed;
        cell.warmImage = nullptr;
        const farm::CellResult cold = farm::SweepRunner::runCell(cell);
        cell.warmImage = image;
        const farm::CellResult warm = farm::SweepRunner::runCell(cell);
        EXPECT_EQ(cold.statsDump, warm.statsDump) << "seed " << seed;
        EXPECT_EQ(cold.simCycles, warm.simCycles) << "seed " << seed;
        EXPECT_EQ(cold.completed, warm.completed) << "seed " << seed;
        EXPECT_EQ(cold.failed, warm.failed) << "seed " << seed;
    }
}

// ---------------------------------------------------------------------
// Options plumbing

TEST(SnapOptionsTest, FromOptions)
{
    Options options;
    options.set("snapshot_out", "out.snap");
    options.set("restore", "in.snap");
    options.set("snapshot_every", "5000");
    const snap::SnapshotOptions opts =
        snap::SnapshotOptions::fromOptions(options);
    EXPECT_EQ(opts.out, "out.snap");
    EXPECT_EQ(opts.restore, "in.snap");
    EXPECT_EQ(opts.every, 5000u);

    const snap::SnapshotOptions defaults =
        snap::SnapshotOptions::fromOptions(Options{});
    EXPECT_TRUE(defaults.out.empty());
    EXPECT_TRUE(defaults.restore.empty());
    EXPECT_EQ(defaults.every, 0u);
}

// ---------------------------------------------------------------------
// Format compatibility: the checked-in image at the current format
// version must keep loading. (Older images are rejected by the
// version check: v2 added frame refcounts and the CoW page set, v3
// the protection-key model's kernel key tables.)

TEST(SnapGoldenTest, V3ImageStillRestores)
{
    // The golden recipe: a protection-key machine (so the checked-in
    // image exercises the v3 key tables) shrunk along its bulky axes
    // (free-frame list, cache line maps) so the image stays a few
    // tens of KB; 64-page heap, 2000 zipf references at seed 42,
    // then System + Rng snapshotted.
    const std::string path = dataPath("golden_v3.snap");
    core::SystemConfig config = core::SystemConfig::pkeySystem();
    config.frames = 1024;
    config.cache.sizeBytes = 8 * 1024;
    config.l2Enabled = false;
    const u64 prefix = 2000;

    if (std::getenv("SASOS_GOLDEN_REGEN") != nullptr) {
        core::System sys(config);
        const vm::VAddr base = setupHeap(sys);
        Rng rng(kSeed);
        wl::ZipfPageStream stream(base, kPages, 0.8, kSeed);
        sys.run(stream, prefix, rng);
        snap::Snapshotter snapper;
        snapper.add(sys);
        snapper.add(rng);
        snapper.finish().toFile(path);
        GTEST_SKIP() << "regenerated " << path;
    }

    ASSERT_TRUE(std::filesystem::exists(path))
        << "missing " << path
        << "; run with SASOS_GOLDEN_REGEN=1 to create it";

    core::System sys(config);
    const vm::VAddr base = setupHeap(sys);
    Rng rng(7);
    snap::Restorer restorer(snap::Snapshot::fromFile(path));
    restorer.restore(sys);
    restorer.restore(rng);
    restorer.finish();

    EXPECT_EQ(sys.references.value(), prefix);

    // The restored machine must still be a working machine.
    wl::ZipfPageStream stream(base, kPages, 0.8, kSeed);
    const core::RunResult run = sys.run(stream, 1000, rng);
    EXPECT_EQ(run.completed + run.failed, 1000u);
    EXPECT_EQ(sys.references.value(), prefix + 1000);
}
