/**
 * @file
 * The application-scenario layer's test suite.
 *
 * The centerpiece is the copy-on-write soak: thousands of randomized
 * fork/write/exit steps against an independent shadow model of frame
 * sharing, asserting after every step that each frame's refcount
 * equals its live mapper count, that the sharing structure (which
 * pages share which frame) matches the shadow exactly, and at
 * quiescence that no frame leaked and the kernel's cowCopies /
 * cowReuses counters match the shadow's first-write bookkeeping.
 *
 * Around it: builder determinism (a script is a pure function of its
 * config), replay determinism, cross-model outcome identity through
 * the scenario differential oracle, death tests for invalid scenario
 * configs (clean fatals rerouted into exceptions), and the multi-core
 * engine's ForkCow step.
 */

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/mc/mc_system.hh"
#include "core/system.hh"
#include "scenario/oracle.hh"
#include "scenario/runner.hh"
#include "scenario/scenario.hh"

using namespace sasos;
namespace mc = sasos::core::mc;

namespace
{

/** SASOS_FATAL rerouted into a catchable exception, per test scope. */
struct FatalRejection : std::runtime_error
{
    explicit FatalRejection(const std::string &message)
        : std::runtime_error(message)
    {
    }
};

class ScopedFatalThrow
{
  public:
    ScopedFatalThrow()
    {
        previous_ = setFatalHandler([](const std::string &message) -> void {
            throw FatalRejection(message);
        });
    }
    ~ScopedFatalThrow() { setFatalHandler(previous_); }

  private:
    FatalHandler previous_;
};

/** Expect `fn` to die with a fatal whose message contains `needle`. */
template <typename Fn>
void
expectFatalContaining(Fn fn, const std::string &needle)
{
    ScopedFatalThrow reroute;
    try {
        fn();
        FAIL() << "expected a fatal containing \"" << needle << "\"";
    } catch (const FatalRejection &fatal) {
        EXPECT_NE(std::string(fatal.what()).find(needle),
                  std::string::npos)
            << "fatal message was: " << fatal.what();
    }
}

std::string
dumpOf(core::System &sys)
{
    std::ostringstream os;
    sys.dumpStats(os);
    return os.str();
}

} // namespace

// ---------------------------------------------------------------------------
// Builder and replay determinism.

TEST(ScenarioBuildTest, BuildersArePureFunctionsOfTheirConfig)
{
    for (const auto &[a, b] :
         {std::pair{scn::buildForkScript(scn::ForkConfig{}),
                    scn::buildForkScript(scn::ForkConfig{})},
          std::pair{scn::buildPortalScript(scn::PortalConfig{}),
                    scn::buildPortalScript(scn::PortalConfig{})},
          std::pair{scn::buildServerMixScript(scn::ServerMixConfig{}),
                    scn::buildServerMixScript(scn::ServerMixConfig{})}}) {
        EXPECT_EQ(a.name, b.name);
        EXPECT_EQ(a.refs, b.refs);
        ASSERT_EQ(a.ops.size(), b.ops.size());
        EXPECT_TRUE(a.ops == b.ops) << a.name;
    }
}

TEST(ScenarioBuildTest, SeedChangesTheScript)
{
    scn::ForkConfig a, b;
    a.seed = 1;
    b.seed = 2;
    EXPECT_FALSE(scn::buildForkScript(a).ops ==
                 scn::buildForkScript(b).ops);
}

TEST(ScenarioBuildTest, StandardScriptsExerciseTheKernel)
{
    const std::vector<scn::Script> scripts = scn::standardScripts(1);
    ASSERT_EQ(scripts.size(), 3u);
    for (const scn::Script &script : scripts) {
        EXPECT_GT(script.refs, 100u) << script.name;
        bool has_kernel_op = false;
        for (const scn::Op &op : script.ops)
            has_kernel_op |= op.kind != scn::OpKind::Ref &&
                             op.kind != scn::OpKind::Switch;
        EXPECT_TRUE(has_kernel_op) << script.name;
    }
}

TEST(ScenarioReplayTest, ReplayIsDeterministicPerModel)
{
    const scn::Script script = scn::buildForkScript(scn::ForkConfig{});
    for (core::ModelKind kind :
         {core::ModelKind::Plb, core::ModelKind::PageGroup,
          core::ModelKind::Conventional}) {
        u64 cycles[2];
        std::string stats[2];
        for (int run = 0; run < 2; ++run) {
            core::System sys(core::SystemConfig::forModel(kind));
            const scn::RunStats tally = scn::runScript(sys, script);
            EXPECT_EQ(tally.refs, script.refs);
            cycles[run] = sys.cycles().count();
            stats[run] = dumpOf(sys);
        }
        EXPECT_EQ(cycles[0], cycles[1]) << core::toString(kind);
        EXPECT_EQ(stats[0], stats[1]) << core::toString(kind);
    }
}

TEST(ScenarioReplayTest, ForkScenarioTakesCowFaults)
{
    core::System sys(
        core::SystemConfig::forModel(core::ModelKind::Plb));
    scn::runScript(sys, scn::buildForkScript(scn::ForkConfig{}));
    EXPECT_GT(sys.kernel().forks.value(), 0u);
    EXPECT_GT(sys.kernel().cowFaults.value(), 0u);
    EXPECT_GT(sys.kernel().cowCopies.value(), 0u);
    EXPECT_EQ(sys.kernel().cowFaults.value(),
              sys.kernel().cowCopies.value() +
                  sys.kernel().cowReuses.value());
}

// ---------------------------------------------------------------------------
// The differential oracle over scenarios.

TEST(ScenarioOracleTest, AllScenariosPassCleanAndInjected)
{
    fault::FaultConfig faults;
    faults.rate = 0.02;
    faults.seed = 7;
    for (const scn::ScenarioVerdict &verdict :
         scn::runStandardOracle(3, faults)) {
        EXPECT_TRUE(verdict.passed) << verdict.scenario;
        for (const std::string &violation : verdict.violations)
            ADD_FAILURE() << violation;
        ASSERT_EQ(verdict.runs.size(), 8u);
        for (const scn::ScenarioRun &run : verdict.runs) {
            EXPECT_EQ(run.decisions.size(), verdict.references)
                << verdict.scenario << "/" << run.model;
            EXPECT_TRUE(run.hwWithinCanonical);
            if (run.injected) {
                EXPECT_GT(run.injectedEvents, 0u)
                    << verdict.scenario << "/" << run.model;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The copy-on-write refcount soak.

namespace
{

/** One live task of the soak: a domain plus its private segment. */
struct SoakTask
{
    os::DomainId domain = 0;
    vm::SegmentId seg = vm::kInvalidSegment;
    u64 firstPage = 0;
    u64 pages = 0;
};

/**
 * Independent shadow of the frame-sharing structure. Pages are keyed
 * by VPN; each mapped page points at a "block" (the shadow's name for
 * a physical frame) with its own refcount. The shadow never looks at
 * the kernel's frame numbers, so the comparison is a real
 * cross-check, not a tautology.
 */
struct ShadowModel
{
    std::unordered_map<u64, u64> blockOf;
    std::unordered_map<u64, u32> blockRefs;
    std::set<u64> cowPending;
    u64 nextBlock = 0;
    u64 copies = 0;
    u64 reuses = 0;

    void
    demandMap(u64 vpn)
    {
        blockOf[vpn] = nextBlock;
        blockRefs[nextBlock] = 1;
        ++nextBlock;
    }

    void
    store(u64 vpn)
    {
        if (cowPending.count(vpn) == 0)
            return;
        const u64 block = blockOf[vpn];
        if (blockRefs[block] > 1) {
            --blockRefs[block];
            demandMap(vpn); // fresh private block
            ++copies;
        } else {
            ++reuses;
        }
        cowPending.erase(vpn);
    }

    void
    fork(const SoakTask &parent, const SoakTask &child)
    {
        for (u64 p = 0; p < parent.pages; ++p) {
            const u64 src = parent.firstPage + p;
            const u64 dst = child.firstPage + p;
            const auto it = blockOf.find(src);
            if (it == blockOf.end())
                continue; // unmapped: child page demand-zeros later
            blockOf[dst] = it->second;
            ++blockRefs[it->second];
            cowPending.insert(src);
            cowPending.insert(dst);
        }
    }

    void
    destroy(const SoakTask &task)
    {
        for (u64 p = 0; p < task.pages; ++p) {
            const u64 vpn = task.firstPage + p;
            const auto it = blockOf.find(vpn);
            if (it == blockOf.end())
                continue;
            if (--blockRefs[it->second] == 0)
                blockRefs.erase(it->second);
            blockOf.erase(it);
            cowPending.erase(vpn);
        }
    }
};

/** Every frame's refcount equals its mapper count, the sharing
 * structure matches the shadow, and the CoW-pending sets agree. */
void
checkFrameInvariants(core::System &sys, const ShadowModel &shadow)
{
    std::unordered_map<u64, u32> mappers;
    std::unordered_map<u64, u64> frameOfBlock;
    bool structure_ok = true;
    sys.state().pageTable.forEach(
        [&](vm::Vpn vpn, const vm::Translation &t) {
            ++mappers[t.pfn.number()];
            const auto it = shadow.blockOf.find(vpn.number());
            if (it == shadow.blockOf.end()) {
                structure_ok = false;
                return;
            }
            const auto [entry, inserted] =
                frameOfBlock.emplace(it->second, t.pfn.number());
            // All pages of one shadow block share one frame.
            structure_ok &= entry->second == t.pfn.number();
        });
    ASSERT_TRUE(structure_ok) << "sharing structure diverged";
    ASSERT_EQ(sys.state().pageTable.size(), shadow.blockOf.size());
    // Distinct blocks <-> distinct frames (injective both ways since
    // counts match).
    ASSERT_EQ(frameOfBlock.size(), shadow.blockRefs.size());
    ASSERT_EQ(frameOfBlock.size(), mappers.size());
    ASSERT_EQ(sys.state().frameAllocator.inUse(), mappers.size());
    for (const auto &[pfn, count] : mappers) {
        ASSERT_EQ(sys.state().frameAllocator.refCount(vm::Pfn(pfn)),
                  count)
            << "frame " << pfn;
        ASSERT_EQ(sys.state().pageTable.frameMappers(vm::Pfn(pfn)),
                  count)
            << "frame " << pfn;
    }
    for (const auto &[blk, refs] : shadow.blockRefs) {
        const auto it = frameOfBlock.find(blk);
        ASSERT_NE(it, frameOfBlock.end());
        ASSERT_EQ(mappers[it->second], refs) << "block " << blk;
    }
    for (const u64 vpn : shadow.cowPending)
        ASSERT_TRUE(sys.kernel().isCowProtected(vm::Vpn(vpn)))
            << "page " << vpn;
}

} // namespace

TEST(CowSoakTest, RefcountInvariantsHoldOverTenThousandSteps)
{
    constexpr int kSteps = 10'000;
    constexpr u64 kTaskPages = 6;
    constexpr std::size_t kMaxTasks = 32;

    core::System sys(
        core::SystemConfig::forModel(core::ModelKind::Plb));
    auto &kernel = sys.kernel();
    Rng rng(2026);
    ShadowModel shadow;

    std::vector<SoakTask> tasks;
    auto makeTask = [&](os::DomainId domain, vm::SegmentId seg) {
        const vm::Segment *segment = sys.state().segments.find(seg);
        tasks.push_back(SoakTask{domain, seg,
                                 segment->firstPage.number(),
                                 segment->pages});
    };

    const os::DomainId root = kernel.createDomain("root");
    const vm::SegmentId root_seg = kernel.createSegment("root", kTaskPages);
    kernel.attach(root, root_seg, vm::Access::ReadWrite);
    kernel.switchTo(root);
    makeTask(root, root_seg);
    for (u64 p = 0; p < kTaskPages; ++p) {
        ASSERT_TRUE(sys.store(
            vm::baseOf(vm::Vpn(tasks[0].firstPage + p)) + 8));
        shadow.demandMap(tasks[0].firstPage + p);
    }

    for (int step = 0; step < kSteps; ++step) {
        const double roll = rng.nextReal();
        if (roll < 0.06 && tasks.size() < kMaxTasks) {
            // Fork: a random task's segment into a fresh domain.
            // (Copy: makeTask's push_back may reallocate `tasks`.)
            const SoakTask parent = tasks[rng.nextBelow(tasks.size())];
            const os::DomainId child = kernel.createDomain("child");
            const vm::SegmentId child_seg = kernel.forkSegmentCow(
                parent.seg, child, vm::Access::ReadWrite, "cow");
            makeTask(child, child_seg);
            shadow.fork(parent, tasks.back());
        } else if (roll < 0.12 && tasks.size() > 1) {
            // Exit: a random non-root task dies.
            const std::size_t victim = 1 + rng.nextBelow(tasks.size() - 1);
            const SoakTask task = tasks[victim];
            if (kernel.currentDomain() == task.domain)
                kernel.switchTo(tasks[0].domain);
            kernel.destroySegment(task.seg);
            kernel.destroyDomain(task.domain);
            shadow.destroy(task);
            tasks.erase(tasks.begin() + victim);
        } else {
            // A reference by a random task to a random page of its
            // own segment.
            const SoakTask &task = tasks[rng.nextBelow(tasks.size())];
            const u64 vpn = task.firstPage + rng.nextBelow(task.pages);
            const bool store = rng.bernoulli(0.55);
            const bool mapped = shadow.blockOf.count(vpn) != 0;
            kernel.switchTo(task.domain);
            const vm::VAddr va =
                vm::baseOf(vm::Vpn(vpn)) + rng.nextBelow(512) * 8;
            ASSERT_TRUE(sys.access(va, store ? vm::AccessType::Store
                                             : vm::AccessType::Load));
            if (!mapped)
                shadow.demandMap(vpn);
            if (store)
                shadow.store(vpn);
        }
        checkFrameInvariants(sys, shadow);
        if (::testing::Test::HasFatalFailure())
            FAIL() << "invariants broken at step " << step;
    }

    // The soak must genuinely exercise the machinery.
    EXPECT_GT(kernel.forks.value(), 50u);
    EXPECT_GT(shadow.copies, 100u);
    EXPECT_GT(shadow.reuses, 10u);

    // The kernel's counters match the shadow's first-write bookkeeping.
    EXPECT_EQ(kernel.cowCopies.value(), shadow.copies);
    EXPECT_EQ(kernel.cowReuses.value(), shadow.reuses);
    EXPECT_EQ(kernel.cowFaults.value(), shadow.copies + shadow.reuses);

    // Quiescence: reap everything but the root; zero leaked frames.
    while (tasks.size() > 1) {
        const SoakTask task = tasks.back();
        if (kernel.currentDomain() == task.domain)
            kernel.switchTo(tasks[0].domain);
        kernel.destroySegment(task.seg);
        kernel.destroyDomain(task.domain);
        shadow.destroy(task);
        tasks.pop_back();
    }
    checkFrameInvariants(sys, shadow);
    EXPECT_EQ(sys.state().frameAllocator.inUse(),
              sys.state().pageTable.size());
    EXPECT_LE(sys.state().frameAllocator.inUse(), kTaskPages);
    for (const auto &[vpn, block] : shadow.blockOf)
        EXPECT_EQ(shadow.blockRefs.at(block), 1u);
}

// ---------------------------------------------------------------------------
// Death tests: invalid scenario configs are clean fatals.

TEST(ScenarioDeathTest, ZeroClientDomainsIsFatal)
{
    scn::PortalConfig config;
    config.clients = 0;
    expectFatalContaining(
        [&] { scn::buildPortalScript(config); },
        "needs at least one client domain");
}

TEST(ScenarioDeathTest, ForkDepthPastSegmentBudgetIsFatal)
{
    scn::ForkConfig config;
    config.depth = 10;
    config.fanout = 2;
    config.maxSegments = 96;
    expectFatalContaining(
        [&] { scn::buildForkScript(config); },
        "exceeds the segment budget");
}

TEST(ScenarioDeathTest, PortalIntoDetachedSegmentIsFatal)
{
    scn::PortalConfig config;
    config.dropPortalHop = 1;
    expectFatalContaining(
        [&] { scn::buildPortalScript(config); },
        "portal into a detached segment");
}

TEST(ScenarioDeathTest, ForkOfUnknownSegmentIsFatal)
{
    core::System sys(
        core::SystemConfig::forModel(core::ModelKind::Plb));
    const os::DomainId child = sys.kernel().createDomain("c");
    expectFatalContaining(
        [&] {
            sys.kernel().forkSegmentCow(vm::SegmentId{9999}, child,
                                        vm::Access::ReadWrite, "f");
        },
        "unknown segment");
}

// ---------------------------------------------------------------------------
// The multi-core engine's ForkCow step.

TEST(ScenarioMcTest, ForkCowStepsAreDeterministicAcrossRuns)
{
    mc::McConfig config;
    config.system = core::SystemConfig::forModel(core::ModelKind::Plb);
    config.cores = 4;
    config.workload.stepsPerCore = 300;
    config.workload.churnProb = 0.05;
    config.workload.forkProb = 0.08;
    config.workload.seed = 11;

    mc::McSystem a(config);
    const mc::McResult ra = a.run();
    mc::McSystem b(config);
    const mc::McResult rb = b.run();

    EXPECT_GT(a.kernel().forks.value(), 0u);
    EXPECT_EQ(a.kernel().forks.value(), b.kernel().forks.value());
    EXPECT_EQ(a.kernel().cowFaults.value(), b.kernel().cowFaults.value());
    EXPECT_EQ(ra.completed, rb.completed);
    EXPECT_EQ(ra.failed, rb.failed);
    EXPECT_EQ(ra.cycles, rb.cycles);
    EXPECT_EQ(ra.shootdowns, rb.shootdowns);
    EXPECT_EQ(ra.invariantViolations, 0u);
    EXPECT_EQ(ra.hwViolations, 0u);
}

TEST(ScenarioMcTest, ForkCowRunsOnEveryModel)
{
    for (core::ModelKind kind :
         {core::ModelKind::Plb, core::ModelKind::PageGroup,
          core::ModelKind::Conventional}) {
        mc::McConfig config;
        config.system = core::SystemConfig::forModel(kind);
        config.cores = 2;
        config.workload.stepsPerCore = 200;
        config.workload.forkProb = 0.1;
        config.workload.seed = 5;
        mc::McSystem engine(config);
        const mc::McResult result = engine.run();
        EXPECT_GT(engine.kernel().forks.value(), 0u)
            << core::toString(kind);
        EXPECT_EQ(result.invariantViolations, 0u) << core::toString(kind);
        EXPECT_EQ(result.hwViolations, 0u) << core::toString(kind);
    }
}
