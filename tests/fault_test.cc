/**
 * @file
 * Tests for the deterministic fault-injection engine and its
 * cross-model differential oracle.
 *
 * The engine's contract: a seeded campaign is bit-identical across
 * runs and thread counts, and injected perturbations change cycle
 * costs only -- every reference is retried by the kernel to the same
 * allow/deny outcome the clean run produced.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "fault/fault.hh"
#include "fault/oracle.hh"
#include "farm/campaign.hh"
#include "workload/address_stream.hh"

using namespace sasos;

namespace
{

std::string
tempTracePath(const char *name)
{
    return (std::filesystem::temp_directory_path() / name).string();
}

/** Record the injector's full perturbation schedule for `ticks`. */
std::string
schedule(fault::FaultInjector &injector, u64 ticks)
{
    std::string out;
    for (u64 i = 0; i < ticks; ++i) {
        const fault::Perturbation p = injector.tick();
        char c = '.';
        if (p.evictProtection)
            c = 'p';
        else if (p.evictTranslation)
            c = 't';
        else if (p.evictData)
            c = 'd';
        else if (p.flushProtection)
            c = 'F';
        else if (p.delayFill)
            c = 'D';
        else if (p.transientFault)
            c = 'X';
        out.push_back(c);
    }
    return out;
}

fault::CampaignConfig
smallCampaign(double rate)
{
    fault::CampaignConfig config;
    config.references = 4'000;
    config.faults.rate = rate;
    return config;
}

} // namespace

TEST(FaultInjectorTest, SameSeedSameSchedule)
{
    fault::FaultConfig config;
    config.enabled = true;
    config.seed = 99;
    config.rate = 0.1;
    stats::Group root_a("a"), root_b("b");
    fault::FaultInjector one(config, &root_a);
    fault::FaultInjector two(config, &root_b);
    EXPECT_EQ(schedule(one, 5'000), schedule(two, 5'000));
    EXPECT_EQ(one.injected.value(), two.injected.value());
    EXPECT_GT(one.injected.value(), 0u);
}

TEST(FaultInjectorTest, DifferentSeedsDiverge)
{
    fault::FaultConfig config;
    config.enabled = true;
    config.rate = 0.1;
    stats::Group root_a("a"), root_b("b");
    config.seed = 1;
    fault::FaultInjector one(config, &root_a);
    config.seed = 2;
    fault::FaultInjector two(config, &root_b);
    EXPECT_NE(schedule(one, 5'000), schedule(two, 5'000));
}

TEST(FaultInjectorTest, TransientsRespectTheGap)
{
    fault::FaultConfig config;
    config.enabled = true;
    config.rate = 1.0; // every tick injects
    config.transientGap = 10;
    stats::Group root("r");
    fault::FaultInjector injector(config, &root);
    const std::string sched = schedule(injector, 2'000);
    std::size_t last = std::string::npos;
    for (std::size_t i = 0; i < sched.size(); ++i) {
        if (sched[i] != 'X')
            continue;
        if (last != std::string::npos)
            EXPECT_GE(i - last, config.transientGap) << "at tick " << i;
        last = i;
    }
    EXPECT_GT(injector.transients.value(), 0u);
}

TEST(FaultInjectorTest, RateZeroNeverInjects)
{
    fault::FaultConfig config;
    config.enabled = true;
    config.rate = 0.0;
    stats::Group root("r");
    fault::FaultInjector injector(config, &root);
    for (u64 i = 0; i < 10'000; ++i)
        EXPECT_FALSE(injector.tick().any());
    EXPECT_EQ(injector.injected.value(), 0u);
}

/** A rate-0 enabled injector must not change simulated results. */
TEST(FaultSystemTest, RateZeroMatchesDisabled)
{
    u64 cycles[2] = {0, 0};
    u64 completed[2] = {0, 0};
    int index = 0;
    for (bool enabled : {false, true}) {
        core::SystemConfig config = core::SystemConfig::plbSystem();
        config.faults.enabled = enabled;
        config.faults.rate = 0.0;
        core::System sys(config);
        const os::DomainId app = sys.kernel().createDomain("app");
        const vm::SegmentId seg = sys.kernel().createSegment("heap", 64);
        sys.kernel().attach(app, seg, vm::Access::ReadWrite);
        sys.kernel().switchTo(app);
        const vm::VAddr base = sys.state().segments.find(seg)->base();
        wl::ZipfPageStream stream(base, 64, 0.8, 5);
        Rng rng(5);
        const core::RunResult run = sys.run(stream, 20'000, rng);
        cycles[index] = sys.cycles().count();
        completed[index] = run.completed;
        ++index;
    }
    EXPECT_EQ(cycles[0], cycles[1]);
    EXPECT_EQ(completed[0], completed[1]);
}

/** The same faulty cell, run twice, produces the same stats dump. */
TEST(FaultSystemTest, FaultyRunsAreBitIdenticalAcrossRuns)
{
    for (core::ModelKind kind :
         {core::ModelKind::Plb, core::ModelKind::PageGroup,
          core::ModelKind::Conventional, core::ModelKind::Pkey}) {
        farm::SweepCell cell;
        cell.model = "m";
        cell.workload = "zipf";
        cell.seed = 3;
        cell.config = core::SystemConfig::forModel(kind);
        cell.config.faults.enabled = true;
        cell.config.faults.rate = 0.05;
        cell.pages = 128;
        cell.references = 50'000;
        cell.makeStream = [](vm::VAddr base, u64 pages, u64 seed) {
            return std::make_unique<wl::ZipfPageStream>(base, pages, 0.8,
                                                        seed);
        };
        const farm::CellResult first = farm::SweepRunner::runCell(cell);
        const farm::CellResult second = farm::SweepRunner::runCell(cell);
        EXPECT_EQ(first.statsDump, second.statsDump);
        EXPECT_EQ(first.simCycles, second.simCycles);
        // The campaign actually injected something.
        EXPECT_NE(first.statsDump.find("faults"), std::string::npos);
    }
}

/** Thread count must not leak into faulty simulated results: each
 * cell owns its injector, so a sweep's dumps are identical whatever
 * the pool size. */
TEST(FaultSystemTest, FaultySweepIsThreadCountIndependent)
{
    std::vector<farm::SweepCell> cells;
    for (core::ModelKind kind :
         {core::ModelKind::Plb, core::ModelKind::PageGroup,
          core::ModelKind::Conventional, core::ModelKind::Pkey}) {
        for (u64 seed = 1; seed <= 3; ++seed) {
            farm::SweepCell cell;
            cell.model = core::toString(kind);
            cell.workload = "uniform";
            cell.seed = seed;
            cell.config = core::SystemConfig::forModel(kind);
            cell.config.faults.enabled = true;
            cell.config.faults.seed = seed * 11;
            cell.config.faults.rate = 0.02;
            cell.pages = 64;
            cell.references = 20'000;
            cell.makeStream = [](vm::VAddr base, u64 pages, u64) {
                return std::make_unique<wl::UniformStream>(
                    base, pages * vm::kPageBytes);
            };
            cells.push_back(std::move(cell));
        }
    }
    farm::SweepRunner serial(1);
    farm::SweepRunner pooled(4);
    const std::vector<farm::CellResult> one = serial.run(cells);
    const std::vector<farm::CellResult> four = pooled.run(cells);
    ASSERT_EQ(one.size(), four.size());
    for (std::size_t i = 0; i < one.size(); ++i) {
        EXPECT_EQ(one[i].statsDump, four[i].statsDump)
            << cells[i].model << " seed=" << cells[i].seed;
        EXPECT_EQ(one[i].simCycles, four[i].simCycles);
    }
}

/** The differential oracle: same decisions and final rights across
 * all four models, clean and injected. */
TEST(FaultOracleTest, CampaignPassesAtModerateRate)
{
    const std::string path = tempTracePath("fault_oracle_mid.trc");
    const fault::CampaignResult result =
        fault::runCampaign(smallCampaign(0.02), path);
    for (const std::string &violation : result.violations)
        ADD_FAILURE() << violation;
    EXPECT_TRUE(result.passed);
    ASSERT_EQ(result.runs.size(), 8u);
    for (const fault::RunOutcome &run : result.runs) {
        EXPECT_EQ(run.decisions.size(), result.references);
        EXPECT_TRUE(run.hwWithinCanonical) << run.model;
        if (run.injected)
            EXPECT_GT(run.injectedEvents, 0u) << run.model;
    }
    std::remove(path.c_str());
}

/** Injected transient protection faults must be retried by the kernel
 * to the clean run's outcome -- the campaign passing with transients
 * observed is exactly that claim. */
TEST(FaultOracleTest, TransientFaultsRetryToCleanOutcome)
{
    const std::string path = tempTracePath("fault_oracle_hot.trc");
    fault::CampaignConfig config = smallCampaign(0.3);
    config.faults.transientGap = 16;
    const fault::CampaignResult result = fault::runCampaign(config, path);
    for (const std::string &violation : result.violations)
        ADD_FAILURE() << violation;
    EXPECT_TRUE(result.passed);
    for (const fault::RunOutcome &run : result.runs) {
        if (!run.injected)
            continue;
        EXPECT_GT(run.transients, 0u) << run.model;
        // Recovery happened: the kernel resolved-and-retried more
        // often than in the clean run.
        const fault::RunOutcome *clean =
            result.find(run.model, false);
        ASSERT_NE(clean, nullptr);
        EXPECT_GT(run.faultRetries, clean->faultRetries) << run.model;
        // ...and outcomes still match it.
        EXPECT_EQ(run.decisions, clean->decisions) << run.model;
        EXPECT_EQ(run.rightsSnapshot, clean->rightsSnapshot) << run.model;
    }
    std::remove(path.c_str());
}

/** Same campaign seed, same verdict and numbers, run to run. */
TEST(FaultOracleTest, CampaignIsDeterministic)
{
    const std::string path_a = tempTracePath("fault_oracle_a.trc");
    const std::string path_b = tempTracePath("fault_oracle_b.trc");
    fault::CampaignConfig config = smallCampaign(0.05);
    config.references = 2'000;
    const fault::CampaignResult first = fault::runCampaign(config, path_a);
    const fault::CampaignResult second =
        fault::runCampaign(config, path_b);
    EXPECT_TRUE(first.passed);
    EXPECT_TRUE(second.passed);
    ASSERT_EQ(first.runs.size(), second.runs.size());
    for (std::size_t i = 0; i < first.runs.size(); ++i) {
        EXPECT_EQ(first.runs[i].decisions, second.runs[i].decisions);
        EXPECT_EQ(first.runs[i].rightsSnapshot,
                  second.runs[i].rightsSnapshot);
        EXPECT_EQ(first.runs[i].simCycles, second.runs[i].simCycles);
        EXPECT_EQ(first.runs[i].injectedEvents,
                  second.runs[i].injectedEvents);
    }
    std::remove(path_a.c_str());
    std::remove(path_b.c_str());
}

TEST(FaultConfigTest, OptionsWireThrough)
{
    Options options;
    options.set("faults", "1");
    options.set("fault_seed", "123");
    options.set("fault_rate", "0.25");
    options.set("fault_gap", "32");
    const core::SystemConfig config = core::SystemConfig::fromOptions(
        options, core::SystemConfig::plbSystem());
    EXPECT_TRUE(config.faults.enabled);
    EXPECT_EQ(config.faults.seed, 123u);
    EXPECT_DOUBLE_EQ(config.faults.rate, 0.25);
    EXPECT_EQ(config.faults.transientGap, 32u);
}
