/**
 * @file
 * Cost-accounting audits: closed-form checks that the simulator
 * charges exactly what the cost model says, operation by operation.
 * Every bench number is a sum of these pieces, so pinning them pins
 * the benches.
 */

#include <gtest/gtest.h>

#include "core/system.hh"

using namespace sasos;
using namespace sasos::core;

namespace
{

/** A warm single-domain PLB system with one touched page. */
struct WarmPlb
{
    WarmPlb() : sys(SystemConfig::plbSystem())
    {
        domain = sys.kernel().createDomain("d");
        seg = sys.kernel().createSegment("s", 4);
        sys.kernel().attach(domain, seg, vm::Access::ReadWrite);
        base = sys.state().segments.find(seg)->base();
        sys.store(base); // map + fill + PLB/TLB warm
        sys.load(base);  // everything hot now
    }

    core::System sys;
    os::DomainId domain = 0;
    vm::SegmentId seg = 0;
    vm::VAddr base;
};

} // namespace

TEST(AccountingTest, WarmL1HitCostsExactlyL1Hit)
{
    WarmPlb warm;
    const u64 before = warm.sys.cycles().count();
    const u64 n = 100;
    for (u64 i = 0; i < n; ++i)
        warm.sys.load(warm.base);
    EXPECT_EQ(warm.sys.cycles().count() - before,
              n * warm.sys.costs().l1Hit.count());
}

TEST(AccountingTest, PlbMissOnWarmCacheCostsRefill)
{
    // A second domain touches the cached page: the data hits, only
    // the protection misses.
    WarmPlb warm;
    const os::DomainId other = warm.sys.kernel().createDomain("other");
    warm.sys.kernel().attach(other, warm.seg, vm::Access::Read);
    warm.sys.kernel().switchTo(other);
    const u64 before = warm.sys.cycles().count();
    warm.sys.load(warm.base);
    const u64 cost = warm.sys.cycles().count() - before;
    EXPECT_EQ(cost, warm.sys.costs().l1Hit.count() +
                        warm.sys.costs().plbRefill.count());
}

TEST(AccountingTest, PlbDomainSwitchCostsBasePlusRegister)
{
    WarmPlb warm;
    const os::DomainId other = warm.sys.kernel().createDomain("other");
    const u64 before = warm.sys.cycles().count();
    warm.sys.kernel().switchTo(other);
    EXPECT_EQ(warm.sys.cycles().count() - before,
              warm.sys.costs().domainSwitchBase.count() +
                  warm.sys.costs().registerWrite.count());
}

TEST(AccountingTest, L1MissL2HitCostsDecomposition)
{
    // PLB system, warm PLB + TLB, line evicted from L1 but in L2:
    // l1Hit + offChipTlb (translation for the miss) + l2Hit (+ the
    // L1 fill is free; no victim writeback for a clean line).
    SystemConfig config = SystemConfig::plbSystem();
    config.cache.sizeBytes = 4096;
    config.cache.ways = 1;
    core::System sys(config);
    const os::DomainId d = sys.kernel().createDomain("d");
    const vm::SegmentId seg = sys.kernel().createSegment("s", 4);
    sys.kernel().attach(d, seg, vm::Access::ReadWrite);
    const vm::VAddr base = sys.state().segments.find(seg)->base();
    sys.load(base);          // page 0 mapped, cached
    sys.load(base + 4096);   // page 1 mapped, evicts page 0's line
    sys.load(base);          // L1 miss, L2 hit -- but warm PLB/TLB
    const u64 before = sys.cycles().count();
    sys.load(base + 4096);   // the measured miss: clean, L2-resident
    const u64 cost = sys.cycles().count() - before;
    EXPECT_EQ(cost, sys.costs().l1Hit.count() +
                        sys.costs().offChipTlb.count() +
                        sys.costs().l2Hit.count());
}

TEST(AccountingTest, ProtectionFaultCostsTrap)
{
    // Deny with warm structures (PLB holds a deny entry after the
    // first fault): trap only, repeated.
    WarmPlb warm;
    const os::DomainId other = warm.sys.kernel().createDomain("other");
    warm.sys.kernel().attach(other, warm.seg, vm::Access::Read);
    warm.sys.kernel().switchTo(other);
    warm.sys.store(warm.base); // first: refill + fault
    const u64 before = warm.sys.cycles().count();
    warm.sys.store(warm.base); // now: hit deny entry + trap
    const u64 cost = warm.sys.cycles().count() - before;
    EXPECT_EQ(cost, warm.sys.costs().l1Hit.count() +
                        warm.sys.costs().kernelTrap.count());
}

TEST(AccountingTest, DemandMapCostsTrapPlusTableUpdate)
{
    WarmPlb warm;
    const vm::VAddr fresh = warm.base + vm::kPageBytes;
    const CycleAccount snapshot = warm.sys.account();
    warm.sys.load(fresh);
    const CycleAccount delta = warm.sys.account().since(snapshot);
    // Trap for the translation fault; kernel work for the mapping.
    EXPECT_EQ(delta.byCategory(CostCategory::Trap).count(),
              warm.sys.costs().kernelTrap.count());
    EXPECT_EQ(delta.byCategory(CostCategory::KernelWork).count(),
              warm.sys.costs().tableUpdate.count());
}

TEST(AccountingTest, PageGroupRefillChargesPgCacheRefill)
{
    core::System sys(SystemConfig::pageGroupSystem());
    const os::DomainId a = sys.kernel().createDomain("a");
    const os::DomainId b = sys.kernel().createDomain("b");
    const vm::SegmentId seg = sys.kernel().createSegment("s", 2);
    sys.kernel().attach(a, seg, vm::Access::ReadWrite);
    sys.kernel().attach(b, seg, vm::Access::ReadWrite);
    const vm::VAddr base = sys.state().segments.find(seg)->base();
    sys.kernel().switchTo(a);
    sys.load(base);
    sys.kernel().switchTo(b); // purges the PID cache
    sys.kernel().switchTo(a); // purged again; TLB + L1 still warm
    const u64 before = sys.cycles().count();
    sys.load(base);
    const u64 cost = sys.cycles().count() - before;
    EXPECT_EQ(cost, sys.costs().l1Hit.count() +
                        sys.costs().tlbLookup.count() +
                        sys.costs().pgCacheRefill.count());
}

TEST(AccountingTest, ConventionalPurgeSwitchRefillsTranslationToo)
{
    // After a purge-on-switch, even a cached line costs a TLB refill
    // (the paper's complaint: translation state lost needlessly).
    core::System sys(SystemConfig::purgingConventionalSystem());
    const os::DomainId a = sys.kernel().createDomain("a");
    const os::DomainId b = sys.kernel().createDomain("b");
    const vm::SegmentId seg = sys.kernel().createSegment("s", 2);
    sys.kernel().attach(a, seg, vm::Access::ReadWrite);
    sys.kernel().attach(b, seg, vm::Access::ReadWrite);
    const vm::VAddr base = sys.state().segments.find(seg)->base();
    sys.kernel().switchTo(a);
    sys.load(base);
    sys.kernel().switchTo(b);
    const u64 before = sys.cycles().count();
    sys.load(base); // L1 hit (VIPT, no flush) but TLB refill
    const u64 cost = sys.cycles().count() - before;
    EXPECT_EQ(cost, sys.costs().l1Hit.count() +
                        sys.costs().tlbLookup.count() +
                        sys.costs().tlbRefill.count());
}

TEST(AccountingTest, UnmapFlushChargesPerLine)
{
    // Unmap of a fully clean, uncached page still scans every line.
    WarmPlb warm;
    const vm::VAddr fresh = warm.base + 2 * vm::kPageBytes;
    warm.sys.load(fresh); // map one line of the page
    const CycleAccount snapshot = warm.sys.account();
    warm.sys.kernel().unmapPage(vm::pageOf(fresh));
    const CycleAccount delta = warm.sys.account().since(snapshot);
    const u64 l1_lines = vm::kPageBytes / warm.sys.config().cache.lineBytes;
    const u64 l2_lines = vm::kPageBytes / warm.sys.config().l2.lineBytes;
    // One flush access per line on both levels; one clean line was
    // present in each, so no writebacks.
    EXPECT_EQ(delta.byCategory(CostCategory::Flush).count(),
              (l1_lines + l2_lines) *
                  warm.sys.costs().cacheFlushLine.count());
}

TEST(AccountingTest, IoNeverLeaksIntoProtectionCategories)
{
    core::System sys(SystemConfig::plbSystem());
    sys.makePager(os::PagerConfig{true});
    const os::DomainId d = sys.kernel().createDomain("d");
    const vm::SegmentId seg = sys.kernel().createSegment("s", 2);
    sys.kernel().attach(d, seg, vm::Access::ReadWrite);
    sys.kernel().switchTo(d);
    const vm::VAddr base = sys.state().segments.find(seg)->base();
    sys.store(base);
    const CycleAccount snapshot = sys.account();
    sys.kernel().pager()->pageOut(vm::pageOf(base));
    const CycleAccount delta = sys.account().since(snapshot);
    EXPECT_EQ(delta.byCategory(CostCategory::Io).count(),
              sys.costs().diskAccess.count() +
                  sys.costs().compressPage.count());
    EXPECT_EQ(delta.totalExcludingIo().count(),
              delta.total().count() -
                  delta.byCategory(CostCategory::Io).count());
}
