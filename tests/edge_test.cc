/**
 * @file
 * Edge-case and failure-injection tests: fatal user-error paths,
 * formatter corners, kernel misuse guards -- the checks that keep bad
 * configurations from producing silently wrong numbers.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/smp.hh"
#include "core/system.hh"
#include "sim/options.hh"
#include "sim/table.hh"
#include "trace/trace.hh"

using namespace sasos;

TEST(OptionsEdgeTest, BadIntegerIsFatal)
{
    Options options;
    options.set("calls", "not-a-number");
    EXPECT_EXIT(options.getU64("calls", 1),
                ::testing::ExitedWithCode(1), "not an int");
}

TEST(OptionsEdgeTest, BadDoubleIsFatal)
{
    Options options;
    options.set("theta", "0.5x");
    EXPECT_EXIT(options.getDouble("theta", 1.0),
                ::testing::ExitedWithCode(1), "not a number");
}

TEST(OptionsEdgeTest, BadBoolIsFatal)
{
    Options options;
    options.set("eager", "maybe");
    EXPECT_EXIT(options.getBool("eager", false),
                ::testing::ExitedWithCode(1), "not a bool");
}

TEST(OptionsEdgeTest, UnknownCostConstantIsFatal)
{
    Options options;
    options.set("cost.noSuchThing", "5");
    CostModel costs;
    EXPECT_EXIT(options.applyCostOverrides(costs),
                ::testing::ExitedWithCode(1), "unknown cost constant");
}

TEST(OptionsEdgeTest, HexValuesParse)
{
    Options options;
    options.set("addr", "0x1000");
    EXPECT_EQ(options.getU64("addr", 0), 0x1000u);
}

TEST(ConfigEdgeTest, UnknownModelIsFatal)
{
    EXPECT_EXIT(core::parseModelKind("vax"),
                ::testing::ExitedWithCode(1), "unknown protection model");
}

TEST(ConfigEdgeTest, UnknownCacheOrgIsFatal)
{
    Options options;
    options.set("cacheOrg", "sideways");
    EXPECT_EXIT(core::SystemConfig::fromOptions(
                    options, core::SystemConfig::plbSystem()),
                ::testing::ExitedWithCode(1),
                "unknown cache organization");
}

TEST(TableEdgeTest, SeparatorRendersRule)
{
    TextTable table({"a"});
    table.addRow({"x"});
    table.addSeparator();
    table.addRow({"y"});
    std::ostringstream os;
    table.print(os);
    // header rule + separator + top/bottom = at least 4 rules.
    const std::string out = os.str();
    std::size_t rules = 0, pos = 0;
    while ((pos = out.find("+---", pos)) != std::string::npos) {
        ++rules;
        pos += 4;
    }
    EXPECT_GE(rules, 4u);
}

TEST(TableEdgeTest, WrongCellCountPanics)
{
    TextTable table({"a", "b"});
    EXPECT_DEATH(table.addRow({"only-one"}), "cells");
}

TEST(StatsEdgeTest, ResetIsRecursive)
{
    stats::Group root("r");
    stats::Group child(&root, "c");
    stats::Scalar a(&root, "a", "");
    stats::Scalar b(&child, "b", "");
    a += 1;
    b += 2;
    root.reset();
    EXPECT_EQ(a.value(), 0u);
    EXPECT_EQ(b.value(), 0u);
}

TEST(KernelEdgeTest, DestroyingRunningDomainPanics)
{
    core::System sys(core::SystemConfig::plbSystem());
    const os::DomainId d = sys.kernel().createDomain("only");
    EXPECT_DEATH(sys.kernel().destroyDomain(d), "running domain");
}

TEST(KernelEdgeTest, AttachingUnknownSegmentIsFatal)
{
    core::System sys(core::SystemConfig::plbSystem());
    const os::DomainId d = sys.kernel().createDomain("d");
    EXPECT_EXIT(sys.kernel().attach(d, 999, vm::Access::Read),
                ::testing::ExitedWithCode(1), "unknown segment");
}

TEST(KernelEdgeTest, UnmappingUnmappedPagePanics)
{
    core::System sys(core::SystemConfig::plbSystem());
    sys.kernel().createDomain("d");
    EXPECT_DEATH(sys.kernel().unmapPage(vm::Vpn(0x100)), "unmap");
}

TEST(KernelEdgeTest, AccessWithNoDomainPanics)
{
    core::System sys(core::SystemConfig::plbSystem());
    EXPECT_DEATH(sys.load(vm::VAddr(0x100000)), "no current domain");
}

TEST(KernelEdgeTest, ZeroPageSegmentIsFatal)
{
    core::System sys(core::SystemConfig::plbSystem());
    sys.kernel().createDomain("d");
    EXPECT_EXIT(sys.kernel().createSegment("empty", 0),
                ::testing::ExitedWithCode(1), "at least one page");
}

TEST(TraceEdgeTest, MalformedTextLineIsFatal)
{
    EXPECT_EXIT(trace::fromText("gibberish"),
                ::testing::ExitedWithCode(1), "malformed");
    EXPECT_EXIT(trace::fromText("poke d=1 0x10"),
                ::testing::ExitedWithCode(1), "malformed");
}

TEST(TraceEdgeTest, MissingFileIsFatal)
{
    EXPECT_EXIT(trace::TraceReader reader("/nonexistent/path.trc"),
                ::testing::ExitedWithCode(1), "cannot open");
}

TEST(SmpEdgeTest, ZeroCpusPanics)
{
    EXPECT_DEATH(
        core::SmpSystem(core::SystemConfig::plbSystem(), 0),
        "at least one CPU");
}

TEST(SmpEdgeTest, BadCpuIndexPanics)
{
    core::SmpSystem sys(core::SystemConfig::plbSystem(), 2);
    const os::DomainId d = sys.kernel().createDomain("d");
    EXPECT_DEATH(sys.runOn(7, d), "no CPU");
}
