/**
 * @file
 * Behavioural tests for the protection-key system: the register-file
 * variant of the paper's protection/translation decoupling (Section 4
 * pushed to its MPK-style extreme). Mirrors core_plb_test.cc: the
 * hit/miss/fault taxonomy, key exhaustion and recycling, and the
 * register-flip vs scan-and-flush revocation cycle accounting.
 */

#include <gtest/gtest.h>

#include "core/system.hh"

using namespace sasos;
using namespace sasos::core;

class PkeySystemTest : public ::testing::Test
{
  protected:
    PkeySystemTest() : sys_(SystemConfig::pkeySystem())
    {
        a_ = sys_.kernel().createDomain("a");
        b_ = sys_.kernel().createDomain("b");
    }

    vm::SegmentId
    makeSegment(u64 pages, vm::Access a_rights, vm::Access b_rights,
                bool pow2 = true)
    {
        const vm::SegmentId seg =
            sys_.kernel().createSegment("seg", pages, pow2);
        if (a_rights != vm::Access::None)
            sys_.kernel().attach(a_, seg, a_rights);
        if (b_rights != vm::Access::None)
            sys_.kernel().attach(b_, seg, b_rights);
        return seg;
    }

    vm::VAddr
    baseOf(vm::SegmentId seg)
    {
        return sys_.state().segments.find(seg)->base();
    }

    PkeySystem &model() { return *sys_.pkeySystem(); }

    core::System sys_;
    os::DomainId a_ = 0;
    os::DomainId b_ = 0;
};

TEST_F(PkeySystemTest, DomainSwitchIsOneRegisterWrite)
{
    // The register file is domain-tagged: a protection domain switch
    // costs one register write, exactly like the PLB system.
    const u64 before =
        sys_.account().byCategory(CostCategory::DomainSwitch).count();
    sys_.kernel().switchTo(b_);
    const u64 cost =
        sys_.account().byCategory(CostCategory::DomainSwitch).count() -
        before;
    EXPECT_EQ(cost, sys_.costs().domainSwitchBase.count() +
                        sys_.costs().registerWrite.count());
}

TEST_F(PkeySystemTest, SwitchPurgesNothing)
{
    const vm::SegmentId seg =
        makeSegment(4, vm::Access::ReadWrite, vm::Access::ReadWrite);
    sys_.kernel().switchTo(a_);
    sys_.touchRange(baseOf(seg), 4 * vm::kPageBytes);
    const std::size_t tlb_before = model().tlb().occupancy();
    const std::size_t kpr_before = model().keyCache().occupancy();
    sys_.kernel().switchTo(b_);
    sys_.kernel().switchTo(a_);
    EXPECT_EQ(model().tlb().occupancy(), tlb_before);
    EXPECT_EQ(model().keyCache().occupancy(), kpr_before);
}

TEST_F(PkeySystemTest, AttachBindsNoKeyEagerly)
{
    // Table 1 Attach: nothing is touched eagerly; the segment key is
    // bound at the first refill that needs it.
    makeSegment(8, vm::Access::ReadWrite, vm::Access::None);
    EXPECT_EQ(model().boundKeys(), 0u);
    EXPECT_EQ(model().keyCache().occupancy(), 0u);
    EXPECT_EQ(model().keyAssignments.value(), 0u);
}

TEST_F(PkeySystemTest, OneKeyPerSegmentBoundAtRefill)
{
    const vm::SegmentId seg =
        makeSegment(4, vm::Access::ReadWrite, vm::Access::None);
    const vm::VAddr base = baseOf(seg);
    sys_.kernel().switchTo(a_);
    sys_.touchRange(base, 4 * vm::kPageBytes);
    // Four translations, one key, one register.
    EXPECT_EQ(model().boundKeys(), 1u);
    EXPECT_EQ(model().keyAssignments.value(), 1u);
    EXPECT_EQ(model().tlb().occupancy(), 4u);
    EXPECT_EQ(model().keyCache().occupancy(), 1u);
    const hw::KeyId key = model().keyOf(vm::pageOf(base));
    ASSERT_NE(key, 0u);
    for (u64 i = 1; i < 4; ++i)
        EXPECT_EQ(model().keyOf(vm::pageOf(base + i * vm::kPageBytes)),
                  key);
}

TEST_F(PkeySystemTest, RepeatedHitsNeverRefill)
{
    // Taxonomy: the first reference misses TLB and register file and
    // pays the refills; repeated hits charge nothing to Refill.
    const vm::SegmentId seg =
        makeSegment(1, vm::Access::ReadWrite, vm::Access::None);
    const vm::VAddr base = baseOf(seg);
    sys_.kernel().switchTo(a_);
    sys_.load(base); // tlbRefill + kprRefill
    const u64 refill =
        sys_.account().byCategory(CostCategory::Refill).count();
    const u64 tlb_misses = model().tlb().misses.value();
    const u64 kpr_misses = model().keyCache().misses.value();
    for (int i = 0; i < 10; ++i)
        sys_.load(base);
    EXPECT_EQ(sys_.account().byCategory(CostCategory::Refill).count(),
              refill);
    EXPECT_EQ(model().tlb().misses.value(), tlb_misses);
    EXPECT_EQ(model().keyCache().misses.value(), kpr_misses);
}

TEST_F(PkeySystemTest, SharedSegmentOneRegisterPerDomain)
{
    // The TLB is untagged (translations are global in the single
    // address space): two domains share one translation entry and
    // differ only in their key registers.
    const vm::SegmentId seg =
        makeSegment(1, vm::Access::ReadWrite, vm::Access::Read);
    const vm::VAddr base = baseOf(seg);
    sys_.kernel().switchTo(a_);
    sys_.load(base);
    sys_.kernel().switchTo(b_);
    sys_.load(base);
    EXPECT_EQ(model().tlb().occupancy(), 1u);
    EXPECT_EQ(model().keyCache().occupancy(), 2u);
    EXPECT_FALSE(sys_.store(base)); // b holds Read only
    sys_.kernel().switchTo(a_);
    EXPECT_TRUE(sys_.store(base));
}

TEST_F(PkeySystemTest, SegmentRevocationFlipsOneRegister)
{
    // The headline path: revoking a domain's write rights over a
    // whole warm segment flips the one (domain, segment-key) register
    // -- one table update plus one register write, no TLB purge, and
    // the flipped register still hits afterwards.
    const vm::SegmentId seg =
        makeSegment(8, vm::Access::ReadWrite, vm::Access::None);
    const vm::VAddr base = baseOf(seg);
    sys_.kernel().switchTo(a_);
    sys_.touchRange(base, 8 * vm::kPageBytes);
    const std::size_t tlb_before = model().tlb().occupancy();
    const u64 flips_before = model().keyCache().flips.value();
    const u64 kernel_before =
        sys_.account().byCategory(CostCategory::KernelWork).count();

    sys_.kernel().setSegmentRights(a_, seg, vm::Access::Read);

    EXPECT_EQ(
        sys_.account().byCategory(CostCategory::KernelWork).count() -
            kernel_before,
        sys_.costs().tableUpdate.count() +
            sys_.costs().registerWrite.count());
    EXPECT_EQ(model().keyCache().flips.value(), flips_before + 1);
    EXPECT_EQ(model().tlb().occupancy(), tlb_before);

    // The flipped register serves the next reference without a refill.
    const u64 kpr_misses = model().keyCache().misses.value();
    EXPECT_TRUE(sys_.load(base));
    EXPECT_EQ(model().keyCache().misses.value(), kpr_misses);
    EXPECT_FALSE(sys_.store(base));
}

TEST_F(PkeySystemTest, RevocationCheaperThanConventionalFlush)
{
    // Flip-vs-flush accounting: on a conventional TLB the same
    // revocation scans the whole TLB and invalidates every warm entry
    // of the segment; the key system pays one register write either
    // way.
    const u64 pages = 32;
    u64 kernel_cost[2] = {0, 0};
    const ModelKind kinds[2] = {ModelKind::Pkey,
                                ModelKind::Conventional};
    for (int i = 0; i < 2; ++i) {
        core::System sys(SystemConfig::forModel(kinds[i]));
        auto &kernel = sys.kernel();
        const os::DomainId d = kernel.createDomain("d");
        const vm::SegmentId seg = kernel.createSegment("s", pages);
        kernel.attach(d, seg, vm::Access::ReadWrite);
        kernel.switchTo(d);
        sys.touchRange(sys.state().segments.find(seg)->base(),
                       pages * vm::kPageBytes);
        const u64 before =
            sys.account().byCategory(CostCategory::KernelWork).count();
        kernel.setSegmentRights(d, seg, vm::Access::Read);
        kernel_cost[i] =
            sys.account().byCategory(CostCategory::KernelWork).count() -
            before;
    }
    EXPECT_LT(kernel_cost[0], kernel_cost[1]);
}

TEST_F(PkeySystemTest, PageOverridePromotesToOwnKey)
{
    // A page that acquires per-page state is promoted to its own key
    // so one register keeps describing one rights value exactly.
    const vm::SegmentId seg =
        makeSegment(4, vm::Access::ReadWrite, vm::Access::ReadWrite);
    const vm::VAddr base = baseOf(seg);
    sys_.kernel().switchTo(a_);
    sys_.touchRange(base, 4 * vm::kPageBytes);
    const hw::KeyId seg_key = model().keyOf(vm::pageOf(base));

    sys_.kernel().setPageRights(a_, vm::pageOf(base), vm::Access::Read);
    EXPECT_EQ(model().pageKeyPromotions.value(), 1u);
    const hw::KeyId page_key = model().keyOf(vm::pageOf(base));
    EXPECT_NE(page_key, seg_key);
    EXPECT_NE(page_key, 0u);

    EXPECT_FALSE(sys_.store(base));
    EXPECT_TRUE(sys_.store(base + vm::kPageBytes));
    // The other domain has no override; its grant still rules the
    // promoted page.
    sys_.kernel().switchTo(b_);
    EXPECT_TRUE(sys_.store(base));
}

TEST_F(PkeySystemTest, GlobalRestrictReleasesKeyOnUnrestrict)
{
    const vm::SegmentId seg =
        makeSegment(2, vm::Access::ReadWrite, vm::Access::ReadWrite);
    const vm::VAddr base = baseOf(seg);
    sys_.kernel().switchTo(a_);
    sys_.load(base);
    const hw::KeyId seg_key = model().keyOf(vm::pageOf(base));
    const u64 bound = model().boundKeys();

    sys_.kernel().restrictPage(vm::pageOf(base), vm::Access::None);
    EXPECT_EQ(model().boundKeys(), bound + 1);
    EXPECT_FALSE(sys_.load(base));
    sys_.kernel().switchTo(b_);
    EXPECT_FALSE(sys_.load(base));

    sys_.kernel().unrestrictPage(vm::pageOf(base));
    // No per-page state remains: the page key is returned and the
    // segment key governs again.
    EXPECT_EQ(model().boundKeys(), bound);
    EXPECT_EQ(model().keyOf(vm::pageOf(base)), seg_key);
    EXPECT_TRUE(sys_.load(base));
}

TEST_F(PkeySystemTest, KeyExhaustionRecyclesRoundRobin)
{
    // A key space smaller than the working set forces round-robin
    // recycling; every reference still resolves correctly.
    SystemConfig config = SystemConfig::pkeySystem();
    config.pkeys = 2;
    core::System sys(config);
    auto &kernel = sys.kernel();
    const os::DomainId d = kernel.createDomain("d");
    kernel.switchTo(d);
    vm::VAddr bases[3];
    for (int i = 0; i < 3; ++i) {
        const vm::SegmentId seg = kernel.createSegment("s", 1);
        kernel.attach(d, seg, vm::Access::ReadWrite);
        bases[i] = sys.state().segments.find(seg)->base();
        EXPECT_TRUE(sys.load(bases[i]));
    }
    PkeySystem &model = *sys.pkeySystem();
    EXPECT_GE(model.keyRecycles.value(), 1u);
    EXPECT_LE(model.boundKeys(), config.pkeys);
    // The evicted segment faults its key back in and still resolves.
    for (int i = 0; i < 3; ++i)
        EXPECT_TRUE(sys.load(bases[i]));
    EXPECT_LE(model.boundKeys(), config.pkeys);
}

TEST_F(PkeySystemTest, RecycledKeyCarriesNoStaleRights)
{
    // Recycling must never resurrect rights: a revoked segment stays
    // revoked after its key id has been retired and rebound elsewhere.
    SystemConfig config = SystemConfig::pkeySystem();
    config.pkeys = 2;
    core::System sys(config);
    auto &kernel = sys.kernel();
    const os::DomainId d = kernel.createDomain("d");
    kernel.switchTo(d);
    const vm::SegmentId first = kernel.createSegment("first", 1);
    kernel.attach(d, first, vm::Access::ReadWrite);
    const vm::VAddr first_base = sys.state().segments.find(first)->base();
    EXPECT_TRUE(sys.store(first_base));

    kernel.setSegmentRights(d, first, vm::Access::None);
    // Churn enough segments to recycle the revoked segment's key.
    for (int i = 0; i < 3; ++i) {
        const vm::SegmentId seg = kernel.createSegment("churn", 1);
        kernel.attach(d, seg, vm::Access::ReadWrite);
        EXPECT_TRUE(sys.load(sys.state().segments.find(seg)->base()));
    }
    EXPECT_GE(sys.pkeySystem()->keyRecycles.value(), 1u);
    EXPECT_FALSE(sys.load(first_base));
    kernel.setSegmentRights(d, first, vm::Access::Read);
    EXPECT_TRUE(sys.load(first_base));
    EXPECT_FALSE(sys.store(first_base));
}

TEST_F(PkeySystemTest, DetachDropsRegisterNotTranslation)
{
    // Table 1 Detach: the (domain, key) register goes; the untagged
    // translation stays for everyone else.
    const vm::SegmentId seg =
        makeSegment(1, vm::Access::ReadWrite, vm::Access::Read);
    const vm::VAddr base = baseOf(seg);
    sys_.kernel().switchTo(a_);
    sys_.load(base);
    const hw::KeyId key = model().keyOf(vm::pageOf(base));
    ASSERT_TRUE(model().keyCache().peek(a_, key).has_value());

    sys_.kernel().detach(a_, seg);
    EXPECT_FALSE(model().keyCache().peek(a_, key).has_value());
    EXPECT_NE(model().tlb().peek(vm::pageOf(base)), nullptr);
    EXPECT_FALSE(sys_.load(base));
    sys_.kernel().switchTo(b_);
    EXPECT_TRUE(sys_.load(base));
}

TEST_F(PkeySystemTest, UnmapPurgesTranslationAndFaults)
{
    // The TLB holds the translation here (unlike the PLB's rights
    // entries), so unmap purges it and the next access takes a
    // translation fault, not a protection fault.
    const vm::SegmentId seg =
        makeSegment(1, vm::Access::ReadWrite, vm::Access::None);
    const vm::VAddr base = baseOf(seg);
    sys_.kernel().switchTo(a_);
    sys_.store(base);
    ASSERT_NE(model().tlb().peek(vm::pageOf(base)), nullptr);

    sys_.kernel().unmapPage(vm::pageOf(base));
    EXPECT_EQ(model().tlb().peek(vm::pageOf(base)), nullptr);
    const u64 trans_faults_before =
        sys_.kernel().translationFaults.value();
    EXPECT_TRUE(sys_.load(base));
    EXPECT_EQ(sys_.kernel().translationFaults.value(),
              trans_faults_before + 1);
}

TEST_F(PkeySystemTest, DomainDestructionPurgesItsRegisters)
{
    const vm::SegmentId seg =
        makeSegment(1, vm::Access::ReadWrite, vm::Access::Read);
    const vm::VAddr base = baseOf(seg);
    sys_.kernel().switchTo(b_);
    sys_.load(base);
    sys_.kernel().switchTo(a_);
    sys_.load(base);
    const hw::KeyId key = model().keyOf(vm::pageOf(base));
    ASSERT_TRUE(model().keyCache().peek(b_, key).has_value());
    sys_.kernel().destroyDomain(b_);
    EXPECT_FALSE(model().keyCache().peek(b_, key).has_value());
    EXPECT_TRUE(model().keyCache().peek(a_, key).has_value());
}

TEST_F(PkeySystemTest, EffectiveRightsMatchCanonical)
{
    const vm::SegmentId seg =
        makeSegment(2, vm::Access::ReadWrite, vm::Access::Read);
    const vm::Vpn vpn = sys_.state().segments.find(seg)->firstPage;
    EXPECT_EQ(model().effectiveRights(a_, vpn),
              sys_.kernel().canonicalRights(a_, vpn));
    EXPECT_EQ(model().effectiveRights(b_, vpn),
              sys_.kernel().canonicalRights(b_, vpn));
}

TEST_F(PkeySystemTest, InjectionPerturbsStructuresOnly)
{
    // Fault taxonomy under injection: perturbations evict registers
    // and translations and flash the register file, but rights are
    // rederived from canonical state -- decisions keep matching it.
    SystemConfig config = SystemConfig::pkeySystem();
    config.faults.enabled = true;
    config.faults.rate = 0.2;
    config.faults.seed = 7;
    core::System sys(config);
    auto &kernel = sys.kernel();
    const os::DomainId d = kernel.createDomain("d");
    const vm::SegmentId seg = kernel.createSegment("heap", 64);
    kernel.attach(d, seg, vm::Access::ReadWrite);
    kernel.switchTo(d);
    const vm::VAddr base = sys.state().segments.find(seg)->base();
    for (int i = 0; i < 2000; ++i)
        sys.load(base + (static_cast<u64>(i) * 2654435761u) %
                            (64 * vm::kPageBytes));
    PkeySystem &model = *sys.pkeySystem();
    EXPECT_GT(model.keyCache().injectedEvictions.value() +
                  model.keyCorruptions.value(),
              0u);
    for (u64 p = 0; p < 64; ++p) {
        const vm::Vpn vpn = vm::pageOf(base + p * vm::kPageBytes);
        EXPECT_EQ(model.effectiveRights(d, vpn),
                  kernel.canonicalRights(d, vpn));
    }
    EXPECT_TRUE(sys.store(base));
}
