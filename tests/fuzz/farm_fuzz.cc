/**
 * @file
 * libFuzzer harness for the farm wire protocol.
 *
 * The input bytes are fed to three parsing surfaces:
 *  - verbatim to decodeMessage, exercising the envelope checks the
 *    frames inherit from the snapshot format (magic, version, length
 *    field, FNV checksum) plus the frame-level checks (tag, message
 *    kind, per-kind field decode, trailing bytes);
 *  - re-sealed as the *payload* of a well-formed envelope, so the
 *    fuzzer gets past the checksum and into the message decoder;
 *  - dribbled into a FrameBuffer in uneven chunks, exercising the
 *    coordinator's incremental reassembly and its poisoning paths.
 *
 * Malformed frames are allowed to be *rejected* -- SASOS_FATAL is
 * rerouted into an exception -- but must never crash, hang,
 * over-allocate or trip a sanitizer. Build with -DSASOS_FUZZ=ON
 * (needs Clang) and seed with the checked-in frame corpus:
 *
 *   ./farm_fuzz -max_total_time=30 corpus/ ../../tests/data/
 */

#include <cstdint>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "farm/wire.hh"
#include "sim/logging.hh"

using namespace sasos;

namespace
{

/** Fatal-to-exception bridge, installed once per process. */
struct FatalRejection : std::exception
{
};

const bool handler_installed = [] {
    setFatalHandler([](const std::string &) -> void {
        throw FatalRejection();
    });
    return true;
}();

void
tryDecode(const std::vector<u8> &frame)
{
    try {
        const farm::Message message = farm::decodeMessage(frame);
        // A frame that parses must re-encode; exercise the writer on
        // fuzzer-shaped field values too.
        (void)farm::encodeMessage(message);
    } catch (const FatalRejection &) {
        // Rejection is the expected outcome for malformed frames.
    }
}

} // namespace

extern "C" int
LLVMFuzzerTestOneInput(const uint8_t *data, size_t size)
{
    (void)handler_installed;
    if (size > (1u << 20))
        return 0; // The interesting structure fits well under 1 MB.

    const std::vector<u8> raw(data, data + size);

    // Surface 1: the raw bytes as a frame.
    tryDecode(raw);

    // Surface 2: the bytes re-sealed as a valid envelope's payload,
    // so mutations reach the message decoder behind the checksum.
    {
        snap::SnapWriter writer;
        writer.putString(std::string_view(
            reinterpret_cast<const char *>(data), size));
        tryDecode(writer.seal());
    }

    // Surface 3: incremental reassembly through the coordinator's
    // FrameBuffer, in uneven chunks.
    {
        farm::FrameBuffer buffer;
        std::size_t off = 0;
        std::size_t chunk = 1;
        while (off < raw.size()) {
            const std::size_t n = std::min(chunk, raw.size() - off);
            buffer.feed(raw.data() + off, n);
            off += n;
            chunk = chunk * 2 + 1;
            std::vector<u8> frame;
            while (buffer.next(frame) == 1)
                tryDecode(frame);
        }
    }
    return 0;
}
