/**
 * @file
 * libFuzzer harness for the snapshot loader.
 *
 * The input bytes are fed to two parsing surfaces:
 *  - verbatim as a snapshot image, exercising the envelope checks
 *    (magic, version, length field, FNV checksum);
 *  - re-sealed as the *payload* of a well-formed envelope, so the
 *    fuzzer gets past the checksum and into the per-section decoders
 *    (tags, counts, cross-checks in every load() hook).
 *
 * Malformed images are allowed to be *rejected* -- SASOS_FATAL is
 * rerouted into an exception via setFatalHandler -- but must never
 * crash, hang, over-allocate or trip a sanitizer. Build with
 * -DSASOS_FUZZ=ON (needs Clang) and run with the checked-in golden
 * image as the seed corpus:
 *
 *   ./snap_fuzz -max_total_time=30 corpus/ ../../tests/data/
 */

#include <cstdint>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "core/system.hh"
#include "sim/logging.hh"
#include "sim/random.hh"
#include "snap/snapshot.hh"

using namespace sasos;

namespace
{

/** Fatal-to-exception bridge, installed once per process. */
struct FatalRejection : std::exception
{
};

const bool handler_installed = [] {
    setFatalHandler([](const std::string &) -> void {
        throw FatalRejection();
    });
    return true;
}();

/** Same shape as the golden image's machine (tests/snap_test.cc), so
 * seeds from tests/data/ restore cleanly and mutations explore the
 * deep paths rather than dying on the config cross-check. */
core::SystemConfig
fuzzConfig()
{
    core::SystemConfig config = core::SystemConfig::plbSystem();
    config.frames = 1024;
    config.cache.sizeBytes = 8 * 1024;
    config.l2Enabled = false;
    return config;
}

/** Drive the full restore path; any outcome but a clean rejection or
 * a clean success is a finding. */
void
tryRestore(const snap::Snapshot &image)
{
    try {
        snap::Restorer restorer(image);
        core::System system(fuzzConfig());
        restorer.restore(system);
        Rng rng(1);
        restorer.restore(rng);
        restorer.finish();
    } catch (const FatalRejection &) {
        // Rejected cleanly; that is a pass.
    }
}

/** Wrap the input bytes as the payload of a well-formed envelope. */
snap::Snapshot
sealPayload(const uint8_t *data, size_t size)
{
    snap::Snapshot image;
    image.bytes.resize(snap::kHeaderBytes + size);
    u8 *out = image.bytes.data();
    std::memcpy(out, snap::kMagic, sizeof(snap::kMagic));
    const u32 version = snap::kFormatVersion;
    const u64 length = size;
    for (int i = 0; i < 4; ++i)
        out[8 + i] = static_cast<u8>(version >> (8 * i));
    // reserved[4] stays zero.
    for (int i = 0; i < 8; ++i)
        out[16 + i] = static_cast<u8>(length >> (8 * i));
    if (size > 0)
        std::memcpy(out + snap::kHeaderBytes, data, size);
    const u64 sum = snap::fnv1a(out + snap::kHeaderBytes, size);
    for (int i = 0; i < 8; ++i)
        out[24 + i] = static_cast<u8>(sum >> (8 * i));
    return image;
}

} // namespace

extern "C" int
LLVMFuzzerTestOneInput(const uint8_t *data, size_t size)
{
    (void)handler_installed;
    if (size > (1u << 20))
        return 0; // Big inputs only slow the fuzzer down.

    // Surface 1: the bytes as a whole image (envelope checks).
    snap::Snapshot raw;
    raw.bytes.assign(data, data + size);
    tryRestore(raw);

    // Surface 2: the bytes as a sealed payload (section decoders).
    // Seeds from tests/data/ carry their own envelope, so strip it
    // when present; mutated payloads then stay reachable.
    if (size >= snap::kHeaderBytes &&
        std::memcmp(data, snap::kMagic, sizeof(snap::kMagic)) == 0) {
        tryRestore(sealPayload(data + snap::kHeaderBytes,
                               size - snap::kHeaderBytes));
    } else {
        tryRestore(sealPayload(data, size));
    }
    return 0;
}
