/**
 * @file
 * libFuzzer harness for the trace readers.
 *
 * The input bytes are fed to both parsing surfaces:
 *  - written to a scratch file and read back through TraceReader
 *    (binary format: magic, header count, fixed-width records);
 *  - split into lines and fed to fromText (the text form).
 *
 * Malformed input is allowed to be *rejected* -- SASOS_FATAL is
 * rerouted into an exception via setFatalHandler -- but must never
 * crash, hang or trip a sanitizer. Build with -DSASOS_FUZZ=ON (needs
 * Clang) and run:
 *
 *   ./trace_fuzz -max_total_time=30 corpus/ ../../tests/data/
 */

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <exception>
#include <string>

#include "sim/logging.hh"
#include "trace/trace.hh"

using namespace sasos;

namespace
{

/** Fatal-to-exception bridge, installed once per process. */
struct FatalRejection : std::exception
{
};

const bool handler_installed = [] {
    setFatalHandler([](const std::string &) -> void {
        throw FatalRejection();
    });
    return true;
}();

std::string
scratchPath()
{
    static const std::string path = [] {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "/tmp/sasos_trace_fuzz_%d.trc",
                      static_cast<int>(getpid()));
        return std::string(buf);
    }();
    return path;
}

void
fuzzBinaryReader(const uint8_t *data, size_t size)
{
    const std::string path = scratchPath();
    std::FILE *file = std::fopen(path.c_str(), "wb");
    if (file == nullptr)
        return;
    if (size > 0)
        std::fwrite(data, 1, size, file);
    std::fclose(file);

    try {
        trace::TraceReader reader(path);
        trace::TraceRecord record;
        u64 seen = 0;
        while (reader.next(record)) {
            // Exercise the record printer on whatever decoded, and
            // bound the walk: a hostile header may promise 2^64
            // records but next() must stop at the actual bytes.
            trace::toText(record);
            if (++seen > (size / 8) + 16)
                break;
        }
    } catch (const FatalRejection &) {
        // Rejected cleanly; that is a pass.
    }
}

void
fuzzTextParser(const uint8_t *data, size_t size)
{
    std::string line;
    for (size_t i = 0; i <= size; ++i) {
        if (i < size && data[i] != '\n') {
            line.push_back(static_cast<char>(data[i]));
            continue;
        }
        if (!line.empty()) {
            try {
                const trace::TraceRecord record = trace::fromText(line);
                // Round-trip: anything accepted must re-parse to
                // itself through its own printer.
                if (trace::fromText(trace::toText(record)) != record)
                    __builtin_trap();
            } catch (const FatalRejection &) {
            }
        }
        line.clear();
    }
}

} // namespace

extern "C" int
LLVMFuzzerTestOneInput(const uint8_t *data, size_t size)
{
    (void)handler_installed;
    fuzzBinaryReader(data, size);
    fuzzTextParser(data, size);
    return 0;
}
