/**
 * @file
 * Property-based tests: randomized operation soups over every
 * protection model, checking the invariants that must hold no matter
 * what sequence of kernel operations and references occurs.
 *
 *  - Safety: a reference completes iff the canonical tables allow it
 *    at that moment (no segment servers installed, so faults cannot
 *    change rights). Hardware caching (PLB/TLB/page-group state) must
 *    never leak access.
 *  - Oracle consistency: the model's effectiveRights never exceeds
 *    canonical rights.
 *  - Structural sanity: occupancies within capacity; frames conserved.
 *  - Determinism: identical seeds give identical cycle totals.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/system.hh"
#include "scenario/runner.hh"
#include "sim/random.hh"

using namespace sasos;
using namespace sasos::core;

namespace
{

struct SoupParam
{
    ModelKind model;
    bool purgeOnSwitch;
    bool superPage;
    u64 seed;
    /** Pkey model: override the key-space size (0 keeps the preset).
     * Small values force the key-recycling path under the soup. */
    u64 pkeys = 0;
};

std::string
soupName(const ::testing::TestParamInfo<SoupParam> &info)
{
    std::string name;
    switch (info.param.model) {
      case ModelKind::Plb:
        name = "plb";
        break;
      case ModelKind::PageGroup:
        name = "pg";
        break;
      case ModelKind::Conventional:
        name = "conv";
        break;
      case ModelKind::Pkey:
        name = "pkey";
        break;
    }
    if (info.param.purgeOnSwitch)
        name += "Purge";
    if (!info.param.superPage)
        name += "NoSuper";
    if (info.param.pkeys != 0)
        name += "Keys" + std::to_string(info.param.pkeys);
    name += "Seed" + std::to_string(info.param.seed);
    return name;
}

constexpr vm::Access kGrantChoices[] = {
    vm::Access::None,       vm::Access::Read,  vm::Access::ReadWrite,
    vm::Access::ReadExecute, vm::Access::All,
};

} // namespace

class OpSoupTest : public ::testing::TestWithParam<SoupParam>
{
};

TEST_P(OpSoupTest, SafetyInvariantHoldsUnderRandomOperations)
{
    const SoupParam param = GetParam();
    SystemConfig config = SystemConfig::forModel(param.model);
    config.purgeTlbOnSwitch = param.purgeOnSwitch;
    config.superPagePlb = param.superPage;
    if (!param.superPage)
        config.plb.sizeShifts = {vm::kPageShift};
    // Small structures put maximum pressure on refill paths.
    config.plb.ways = 16;
    config.tlb.ways = 16;
    config.pgCache.entries = 4;
    config.keyCache.entries = 8;
    config.cache.sizeBytes = 4096;
    if (param.pkeys != 0)
        config.pkeys = param.pkeys;
    core::System sys(config);
    auto &kernel = sys.kernel();
    Rng rng(param.seed);

    constexpr int kDomains = 4;
    constexpr int kSegments = 4;
    constexpr u64 kPagesPerSegment = 8;

    std::vector<os::DomainId> domains;
    for (int d = 0; d < kDomains; ++d)
        domains.push_back(kernel.createDomain("d" + std::to_string(d)));

    std::vector<vm::SegmentId> segments;
    std::vector<vm::VAddr> bases;
    for (int s = 0; s < kSegments; ++s) {
        segments.push_back(
            kernel.createSegment("s" + std::to_string(s),
                                 kPagesPerSegment));
        bases.push_back(
            sys.state().segments.find(segments[s])->base());
    }

    auto random_domain = [&] {
        return domains[rng.nextBelow(domains.size())];
    };
    auto random_segment_index = [&] {
        return static_cast<std::size_t>(rng.nextBelow(segments.size()));
    };
    auto random_page = [&](std::size_t s) {
        return vm::pageOf(bases[s]) + rng.nextBelow(kPagesPerSegment);
    };
    auto random_grant = [&] {
        return kGrantChoices[rng.nextBelow(std::size(kGrantChoices))];
    };

    u64 completed = 0, denied = 0;
    for (int op = 0; op < 6000; ++op) {
        switch (rng.nextBelow(10)) {
          case 0: { // attach (re-attach allowed: replaces the grant)
            kernel.attach(random_domain(),
                          segments[random_segment_index()],
                          random_grant());
            break;
          }
          case 1: { // detach if attached
            const os::DomainId d = random_domain();
            const vm::SegmentId seg = segments[random_segment_index()];
            if (sys.state().domain(d).prot.isAttached(seg))
                kernel.detach(d, seg);
            break;
          }
          case 2: { // per-domain page override
            kernel.setPageRights(random_domain(),
                                 random_page(random_segment_index()),
                                 random_grant());
            break;
          }
          case 3: { // clear override (if any)
            const os::DomainId d = random_domain();
            const vm::Vpn vpn = random_page(random_segment_index());
            if (sys.state().domain(d).prot.hasPageOverride(vpn))
                kernel.clearPageRights(d, vpn);
            break;
          }
          case 4: { // segment-level rights change (if attached)
            const os::DomainId d = random_domain();
            const vm::SegmentId seg = segments[random_segment_index()];
            if (sys.state().domain(d).prot.isAttached(seg))
                kernel.setSegmentRights(d, seg, random_grant());
            break;
          }
          case 5: { // restrict / unrestrict a page globally
            const vm::Vpn vpn = random_page(random_segment_index());
            if (sys.state().hasPageMask(vpn))
                kernel.unrestrictPage(vpn);
            else
                kernel.restrictPage(vpn, rng.bernoulli(0.5)
                                             ? vm::Access::None
                                             : vm::Access::Read);
            break;
          }
          case 6: { // domain switch
            kernel.switchTo(random_domain());
            break;
          }
          case 7: { // unmap a mapped page
            const vm::Vpn vpn = random_page(random_segment_index());
            if (kernel.isMapped(vpn))
                kernel.unmapPage(vpn);
            break;
          }
          default: { // a burst of references
            for (int r = 0; r < 8; ++r) {
                const std::size_t s = random_segment_index();
                const vm::VAddr va =
                    bases[s] +
                    rng.nextBelow(kPagesPerSegment * vm::kPageBytes);
                const vm::AccessType type =
                    rng.bernoulli(0.4)
                        ? vm::AccessType::Store
                        : (rng.bernoulli(0.2) ? vm::AccessType::IFetch
                                              : vm::AccessType::Load);
                const os::DomainId current = kernel.currentDomain();
                const vm::Access canonical_before =
                    kernel.canonicalRights(current, vm::pageOf(va));
                const bool ok = sys.access(va, type);
                // No servers exist, so faults cannot change rights:
                // success must match the canonical tables exactly.
                const bool expected = vm::includes(
                    canonical_before, vm::requiredRight(type));
                ASSERT_EQ(ok, expected)
                    << "op " << op << " domain " << current << " va 0x"
                    << std::hex << va.raw() << std::dec << " type "
                    << vm::toString(type) << " canonical "
                    << vm::toString(canonical_before);
                (ok ? completed : denied) += 1;
            }
            break;
          }
        }

        // Oracle check on a random sample point.
        const os::DomainId d = random_domain();
        const vm::Vpn vpn = random_page(random_segment_index());
        const vm::Access hw = sys.model().effectiveRights(d, vpn);
        const vm::Access canonical = kernel.canonicalRights(d, vpn);
        ASSERT_TRUE(vm::includes(canonical, hw))
            << "hardware over-grants: hw=" << vm::toString(hw)
            << " canonical=" << vm::toString(canonical);
    }

    // The soup must genuinely exercise both outcomes.
    EXPECT_GT(completed, 100u);
    EXPECT_GT(denied, 100u);

    // Frames conserved: every mapped page holds exactly one frame.
    EXPECT_EQ(sys.state().frameAllocator.inUse(),
              sys.state().pageTable.size());
}

TEST_P(OpSoupTest, DeterministicCycleTotals)
{
    const SoupParam param = GetParam();
    u64 totals[2];
    for (int run = 0; run < 2; ++run) {
        SystemConfig config = SystemConfig::forModel(param.model);
        config.purgeTlbOnSwitch = param.purgeOnSwitch;
        core::System sys(config);
        auto &kernel = sys.kernel();
        Rng rng(param.seed);
        const os::DomainId a = kernel.createDomain("a");
        const os::DomainId b = kernel.createDomain("b");
        const vm::SegmentId seg = kernel.createSegment("s", 8);
        kernel.attach(a, seg, vm::Access::ReadWrite);
        kernel.attach(b, seg, vm::Access::Read);
        const vm::VAddr base = sys.state().segments.find(seg)->base();
        for (int i = 0; i < 500; ++i) {
            kernel.switchTo(rng.bernoulli(0.5) ? a : b);
            const vm::VAddr va =
                base + rng.nextBelow(8 * vm::kPageBytes);
            if (rng.bernoulli(0.3))
                sys.store(va);
            else
                sys.load(va);
        }
        totals[run] = sys.cycles().count();
    }
    EXPECT_EQ(totals[0], totals[1]);
}

namespace
{

/** Drive the same randomized operation soup against all four
 * architectures in lockstep and assert they agree on every single
 * reference. The canonical tables evolve identically (same kernel
 * calls), so any divergence is a hardware model leaking or dropping
 * rights. With `faults` set, every system also runs its own
 * fault injector -- perturbations may differ per machine, but
 * decisions still may not. */
void
crossModelSoup(u64 seed, bool faults)
{
    constexpr int kDomains = 3;
    constexpr int kSegments = 3;
    constexpr u64 kPagesPerSegment = 8;

    std::vector<std::unique_ptr<core::System>> systems;
    for (ModelKind kind : {ModelKind::Plb, ModelKind::PageGroup,
                           ModelKind::Conventional, ModelKind::Pkey}) {
        SystemConfig config = SystemConfig::forModel(kind);
        config.faults.enabled = faults;
        config.faults.rate = 0.05;
        config.faults.seed = seed;
        if (kind == ModelKind::Pkey) {
            // A tight key space keeps the recycling path inside the
            // lockstep comparison, not just the steady state.
            config.pkeys = 4;
            config.keyCache.entries = 8;
        }
        systems.push_back(std::make_unique<core::System>(config));
    }

    std::vector<os::DomainId> domains;
    std::vector<vm::SegmentId> segments;
    std::vector<vm::VAddr> bases;
    for (int d = 0; d < kDomains; ++d) {
        os::DomainId id = 0;
        for (auto &sys : systems)
            id = sys->kernel().createDomain("d" + std::to_string(d));
        domains.push_back(id);
    }
    for (int s = 0; s < kSegments; ++s) {
        vm::SegmentId id = 0;
        for (auto &sys : systems)
            id = sys->kernel().createSegment("s" + std::to_string(s),
                                             kPagesPerSegment);
        segments.push_back(id);
        // The allocator is deterministic, so every system places the
        // segment at the same base.
        bases.push_back(
            systems[0]->state().segments.find(id)->base());
        for (auto &sys : systems)
            ASSERT_EQ(sys->state().segments.find(id)->base().raw(),
                      bases.back().raw());
    }

    Rng rng(seed);
    auto random_domain = [&] {
        return domains[rng.nextBelow(domains.size())];
    };
    auto random_segment_index = [&] {
        return static_cast<std::size_t>(rng.nextBelow(segments.size()));
    };
    auto random_page = [&](std::size_t s) {
        return vm::pageOf(bases[s]) + rng.nextBelow(kPagesPerSegment);
    };
    auto random_grant = [&] {
        return kGrantChoices[rng.nextBelow(std::size(kGrantChoices))];
    };

    u64 agreed_allows = 0, agreed_denies = 0;
    for (int op = 0; op < 2500; ++op) {
        switch (rng.nextBelow(8)) {
          case 0: {
            const os::DomainId d = random_domain();
            const vm::SegmentId seg = segments[random_segment_index()];
            const vm::Access grant = random_grant();
            if (grant != vm::Access::None)
                for (auto &sys : systems)
                    sys->kernel().attach(d, seg, grant);
            break;
          }
          case 1: {
            const os::DomainId d = random_domain();
            const vm::SegmentId seg = segments[random_segment_index()];
            // Guard reads system 0's canonical state; all systems have
            // identical canonical state, so the guard is shared.
            if (systems[0]->state().domain(d).prot.isAttached(seg))
                for (auto &sys : systems)
                    sys->kernel().detach(d, seg);
            break;
          }
          case 2: {
            const os::DomainId d = random_domain();
            const vm::Vpn vpn = random_page(random_segment_index());
            const vm::Access grant = random_grant();
            for (auto &sys : systems)
                sys->kernel().setPageRights(d, vpn, grant);
            break;
          }
          case 3: {
            const vm::Vpn vpn = random_page(random_segment_index());
            const bool restricted = systems[0]->state().hasPageMask(vpn);
            for (auto &sys : systems) {
                if (restricted)
                    sys->kernel().unrestrictPage(vpn);
                else
                    sys->kernel().restrictPage(vpn, vm::Access::Read);
            }
            break;
          }
          case 4: {
            const os::DomainId d = random_domain();
            for (auto &sys : systems)
                sys->kernel().switchTo(d);
            break;
          }
          default: {
            for (int r = 0; r < 6; ++r) {
                const std::size_t s = random_segment_index();
                const vm::VAddr va =
                    bases[s] +
                    rng.nextBelow(kPagesPerSegment * vm::kPageBytes);
                const vm::AccessType type =
                    rng.bernoulli(0.4)
                        ? vm::AccessType::Store
                        : (rng.bernoulli(0.2) ? vm::AccessType::IFetch
                                              : vm::AccessType::Load);
                const os::DomainId current =
                    systems[0]->kernel().currentDomain();
                const bool expected = vm::includes(
                    systems[0]->kernel().canonicalRights(current,
                                                         vm::pageOf(va)),
                    vm::requiredRight(type));
                for (auto &sys : systems) {
                    const bool ok = sys->access(va, type);
                    ASSERT_EQ(ok, expected)
                        << toString(sys->config().model) << " op " << op
                        << " va 0x" << std::hex << va.raw() << std::dec
                        << " type " << vm::toString(type)
                        << (faults ? " (faults on)" : "");
                }
                (expected ? agreed_allows : agreed_denies) += 1;
            }
            break;
          }
        }
    }
    EXPECT_GT(agreed_allows, 100u);
    EXPECT_GT(agreed_denies, 100u);
    if (faults)
        for (auto &sys : systems)
            EXPECT_GT(sys->injector()->injected.value(), 0u)
                << toString(sys->config().model);
}

} // namespace

TEST(CrossModelEquivalenceTest, AllModelsAgreeOnEveryReference)
{
    for (u64 seed : {11u, 22u, 33u})
        crossModelSoup(seed, false);
}

TEST(CrossModelEquivalenceTest, AgreementSurvivesFaultInjection)
{
    for (u64 seed : {11u, 22u, 33u})
        crossModelSoup(seed, true);
}

namespace
{

/** Replay one application scenario on all four architectures in
 * lockstep: every reference must produce the same allow/deny decision
 * on every model, and that decision must be predictable from the
 * canonical tables alone (for copy-on-write pages a store succeeds
 * through the CoW fault path exactly when the domain's unmasked
 * rights include Write). After every operation, hardware rights on a
 * sampled (domain, page) pair must not exceed canonical rights. */
void
lockstepScenario(const scn::Script &script, bool faults, u64 seed)
{
    std::vector<std::unique_ptr<core::System>> systems;
    for (ModelKind kind : {ModelKind::Plb, ModelKind::PageGroup,
                           ModelKind::Conventional, ModelKind::Pkey}) {
        SystemConfig config = SystemConfig::forModel(kind);
        config.faults.enabled = faults;
        config.faults.rate = 0.03;
        config.faults.seed = seed;
        systems.push_back(std::make_unique<core::System>(config));
    }

    Rng sample(seed ^ 0x5bd1e9955bd1e995ull);
    u64 allows = 0, denies = 0;
    for (std::size_t i = 0; i < script.ops.size(); ++i) {
        const scn::Op &op = script.ops[i];
        if (op.kind == scn::OpKind::Ref) {
            // Expected outcome from system 0's canonical state before
            // any system issues the reference (all canonical states
            // are identical by construction).
            os::Kernel &kernel0 = systems[0]->kernel();
            const os::DomainId current = kernel0.currentDomain();
            const vm::Vpn vpn = vm::pageOf(vm::VAddr(op.addr));
            const os::Domain *d = systems[0]->state().findDomain(current);
            const bool cow_writable =
                kernel0.isCowProtected(vpn) && d != nullptr &&
                vm::includes(d->prot.effectiveRights(
                                 vpn, systems[0]->state().segments),
                             vm::Access::Write);
            const bool expected =
                vm::includes(kernel0.canonicalRights(current, vpn),
                             vm::requiredRight(op.type)) ||
                (op.type == vm::AccessType::Store && cow_writable);
            for (auto &sys : systems) {
                const std::optional<bool> decision =
                    scn::applyOp(*sys, op, i);
                ASSERT_TRUE(decision.has_value());
                ASSERT_EQ(*decision, expected)
                    << script.name << " op " << i << " on "
                    << toString(sys->config().model) << " va 0x"
                    << std::hex << op.addr << std::dec
                    << (faults ? " (faults on)" : "");
            }
            (expected ? allows : denies) += 1;
        } else {
            for (auto &sys : systems)
                scn::applyOp(*sys, op, i);
        }

        // Per-step oracle sample: hardware never over-grants.
        const auto &domains = systems[0]->state().domains();
        const std::vector<vm::SegmentId> live =
            systems[0]->state().segments.liveIds();
        if (domains.empty() || live.empty())
            continue;
        auto it = domains.begin();
        std::advance(it, sample.nextBelow(domains.size()));
        const vm::Segment *seg = systems[0]->state().segments.find(
            live[sample.nextBelow(live.size())]);
        const vm::Vpn vpn(seg->firstPage.number() +
                          sample.nextBelow(seg->pages));
        for (auto &sys : systems) {
            const vm::Access hw =
                sys->model().effectiveRights(it->first, vpn);
            const vm::Access canonical =
                sys->kernel().canonicalRights(it->first, vpn);
            ASSERT_TRUE(vm::includes(canonical, hw))
                << script.name << " op " << i << " on "
                << toString(sys->config().model)
                << ": hw=" << vm::toString(hw)
                << " canonical=" << vm::toString(canonical);
        }
    }
    EXPECT_EQ(allows + denies, script.refs);
    EXPECT_GT(allows, 0u);
}

} // namespace

TEST(ScenarioEquivalenceTest, ScenariosAgreeOnEveryReference)
{
    for (const scn::Script &script : scn::standardScripts(7))
        lockstepScenario(script, false, 7);
}

TEST(ScenarioEquivalenceTest, AgreementSurvivesFaultInjection)
{
    for (const scn::Script &script : scn::standardScripts(9))
        lockstepScenario(script, true, 9);
}

INSTANTIATE_TEST_SUITE_P(
    Soups, OpSoupTest,
    ::testing::Values(
        SoupParam{ModelKind::Plb, false, true, 1},
        SoupParam{ModelKind::Plb, false, true, 2},
        SoupParam{ModelKind::Plb, false, false, 3},
        SoupParam{ModelKind::PageGroup, false, true, 1},
        SoupParam{ModelKind::PageGroup, false, true, 2},
        SoupParam{ModelKind::PageGroup, false, true, 4},
        SoupParam{ModelKind::Conventional, false, true, 1},
        SoupParam{ModelKind::Conventional, false, true, 2},
        SoupParam{ModelKind::Conventional, true, true, 1},
        SoupParam{ModelKind::Conventional, true, true, 5},
        SoupParam{ModelKind::Pkey, false, true, 1},
        SoupParam{ModelKind::Pkey, false, true, 2},
        // Key spaces smaller than the working set force recycling.
        SoupParam{ModelKind::Pkey, false, true, 3, 4},
        SoupParam{ModelKind::Pkey, false, true, 6, 2}),
    soupName);
