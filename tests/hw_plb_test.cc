/**
 * @file
 * Tests for the Protection Lookaside Buffer: per-(domain, page)
 * entries, multi-size protection blocks, indexed and scan purges.
 */

#include <gtest/gtest.h>

#include "hw/plb.hh"
#include "sim/stats.hh"

using namespace sasos;
using namespace sasos::hw;

namespace
{

PlbConfig
smallPlb(std::size_t ways = 16, std::vector<int> shifts = {vm::kPageShift})
{
    PlbConfig config;
    config.sets = 1;
    config.ways = ways;
    config.sizeShifts = std::move(shifts);
    return config;
}

vm::VAddr
pageAddr(u64 page, u64 offset = 0)
{
    return vm::VAddr(page * vm::kPageBytes + offset);
}

} // namespace

TEST(PlbTest, MissThenInsertThenHit)
{
    stats::Group root("t");
    Plb plb(smallPlb(), &root);
    EXPECT_FALSE(plb.lookup(1, pageAddr(5)).has_value());
    plb.insert(1, pageAddr(5), vm::kPageShift, vm::Access::Read);
    auto match = plb.lookup(1, pageAddr(5, 128));
    ASSERT_TRUE(match.has_value());
    EXPECT_EQ(match->rights, vm::Access::Read);
    EXPECT_EQ(plb.hits.value(), 1u);
    EXPECT_EQ(plb.misses.value(), 1u);
}

TEST(PlbTest, EntriesArePerDomain)
{
    // The defining property of the domain-page model: two domains
    // sharing a page use two PLB entries with independent rights.
    stats::Group root("t");
    Plb plb(smallPlb(), &root);
    plb.insert(1, pageAddr(5), vm::kPageShift, vm::Access::ReadWrite);
    plb.insert(2, pageAddr(5), vm::kPageShift, vm::Access::Read);
    EXPECT_EQ(plb.occupancy(), 2u);
    EXPECT_EQ(plb.lookup(1, pageAddr(5))->rights, vm::Access::ReadWrite);
    EXPECT_EQ(plb.lookup(2, pageAddr(5))->rights, vm::Access::Read);
    EXPECT_FALSE(plb.lookup(3, pageAddr(5)).has_value());
}

TEST(PlbTest, NoneRightsIsAHitNotAMiss)
{
    // An entry with rights None is an explicit deny; the lookup hits
    // and the caller raises a protection fault without a refill.
    stats::Group root("t");
    Plb plb(smallPlb(), &root);
    plb.insert(1, pageAddr(5), vm::kPageShift, vm::Access::None);
    auto match = plb.lookup(1, pageAddr(5));
    ASSERT_TRUE(match.has_value());
    EXPECT_EQ(match->rights, vm::Access::None);
}

TEST(PlbTest, InsertUpdatesInPlace)
{
    stats::Group root("t");
    Plb plb(smallPlb(), &root);
    plb.insert(1, pageAddr(5), vm::kPageShift, vm::Access::Read);
    plb.insert(1, pageAddr(5), vm::kPageShift, vm::Access::ReadWrite);
    EXPECT_EQ(plb.occupancy(), 1u);
    EXPECT_EQ(plb.updates.value(), 1u);
    EXPECT_EQ(plb.lookup(1, pageAddr(5))->rights, vm::Access::ReadWrite);
}

TEST(PlbTest, UpdateRightsOnCachedEntry)
{
    stats::Group root("t");
    Plb plb(smallPlb(), &root);
    plb.insert(1, pageAddr(5), vm::kPageShift, vm::Access::ReadWrite);
    EXPECT_TRUE(plb.updateRights(1, pageAddr(5), vm::Access::Read));
    EXPECT_EQ(plb.peek(1, pageAddr(5))->rights, vm::Access::Read);
    EXPECT_FALSE(plb.updateRights(1, pageAddr(6), vm::Access::Read));
}

TEST(PlbTest, SuperPageEntryCoversWholeBlock)
{
    stats::Group root("t");
    Plb plb(smallPlb(16, {vm::kPageShift, 16}), &root); // 4K and 64K
    // One 64 KB entry covers 16 pages.
    plb.insert(1, vm::VAddr(0x100000), 16, vm::Access::ReadWrite);
    for (u64 page = 0; page < 16; ++page) {
        auto match = plb.lookup(1, vm::VAddr(0x100000 + page * 0x1000));
        ASSERT_TRUE(match.has_value()) << "page " << page;
        EXPECT_EQ(match->sizeShift, 16);
    }
    EXPECT_FALSE(plb.lookup(1, vm::VAddr(0x110000)).has_value());
    EXPECT_EQ(plb.occupancy(), 1u);
}

TEST(PlbTest, MostSpecificEntryWins)
{
    stats::Group root("t");
    Plb plb(smallPlb(16, {vm::kPageShift, 16}), &root);
    plb.insert(1, vm::VAddr(0x100000), 16, vm::Access::ReadWrite);
    // A page-grain override inside the super-page must take
    // precedence (Section 4.3: overrides are more specific).
    plb.insert(1, vm::VAddr(0x102000), vm::kPageShift, vm::Access::None);
    EXPECT_EQ(plb.lookup(1, vm::VAddr(0x102000))->rights,
              vm::Access::None);
    EXPECT_EQ(plb.lookup(1, vm::VAddr(0x103000))->rights,
              vm::Access::ReadWrite);
}

TEST(PlbTest, SubPageProtectionBlocks)
{
    // Section 4.3: protection granularity finer than the translation
    // page, like the 801's 128-byte lock granules.
    stats::Group root("t");
    Plb plb(smallPlb(16, {7, vm::kPageShift}), &root);
    plb.insert(1, vm::VAddr(0x1000), 7, vm::Access::ReadWrite);
    plb.insert(1, vm::VAddr(0x1080), 7, vm::Access::Read);
    EXPECT_EQ(plb.lookup(1, vm::VAddr(0x1000 + 0x40))->rights,
              vm::Access::ReadWrite);
    EXPECT_EQ(plb.lookup(1, vm::VAddr(0x1080 + 0x40))->rights,
              vm::Access::Read);
    EXPECT_FALSE(plb.lookup(1, vm::VAddr(0x1100)).has_value());
}

TEST(PlbTest, InvalidateCoveringRemovesMostSpecific)
{
    stats::Group root("t");
    Plb plb(smallPlb(16, {vm::kPageShift, 16}), &root);
    plb.insert(1, vm::VAddr(0x100000), 16, vm::Access::ReadWrite);
    plb.insert(1, vm::VAddr(0x102000), vm::kPageShift, vm::Access::None);
    auto shift = plb.invalidateCovering(1, vm::VAddr(0x102000));
    ASSERT_TRUE(shift.has_value());
    EXPECT_EQ(*shift, vm::kPageShift);
    // The super-page entry still covers the page now.
    EXPECT_EQ(plb.lookup(1, vm::VAddr(0x102000))->sizeShift, 16);
    EXPECT_FALSE(plb.invalidateCovering(2, vm::VAddr(0x102000))
                     .has_value());
}

TEST(PlbTest, PurgeDomainScansEverything)
{
    stats::Group root("t");
    Plb plb(smallPlb(), &root);
    plb.insert(1, pageAddr(1), vm::kPageShift, vm::Access::Read);
    plb.insert(1, pageAddr(2), vm::kPageShift, vm::Access::Read);
    plb.insert(2, pageAddr(1), vm::kPageShift, vm::Access::Read);
    const PurgeResult result = plb.purgeDomain(1);
    // The scan inspects every slot of the structure (the paper's
    // "inspecting all the entries in the PLB" worst case).
    EXPECT_EQ(result.scanned, plb.capacity());
    EXPECT_EQ(result.invalidated, 2u);
    EXPECT_EQ(plb.occupancy(), 1u);
    EXPECT_EQ(plb.purgeScans.value(), plb.capacity());
}

TEST(PlbTest, PurgeRangeOneDomain)
{
    // The paper's detach worst case: inspect every entry, drop those
    // for the (segment, domain) pair.
    stats::Group root("t");
    Plb plb(smallPlb(), &root);
    plb.insert(1, pageAddr(10), vm::kPageShift, vm::Access::Read);
    plb.insert(1, pageAddr(11), vm::kPageShift, vm::Access::Read);
    plb.insert(1, pageAddr(20), vm::kPageShift, vm::Access::Read);
    plb.insert(2, pageAddr(10), vm::kPageShift, vm::Access::Read);
    const PurgeResult result = plb.purgeRange(DomainId{1}, vm::Vpn(10), 5);
    EXPECT_EQ(result.scanned, plb.capacity());
    EXPECT_EQ(result.invalidated, 2u);
    EXPECT_TRUE(plb.peek(2, pageAddr(10)).has_value());
    EXPECT_TRUE(plb.peek(1, pageAddr(20)).has_value());
}

TEST(PlbTest, PurgeRangeAllDomains)
{
    stats::Group root("t");
    Plb plb(smallPlb(), &root);
    plb.insert(1, pageAddr(10), vm::kPageShift, vm::Access::Read);
    plb.insert(2, pageAddr(10), vm::kPageShift, vm::Access::Read);
    const PurgeResult result =
        plb.purgeRange(std::nullopt, vm::Vpn(10), 1);
    EXPECT_EQ(result.invalidated, 2u);
    EXPECT_EQ(plb.occupancy(), 0u);
}

TEST(PlbTest, PurgeRangeCatchesOverlappingSuperPages)
{
    stats::Group root("t");
    Plb plb(smallPlb(16, {vm::kPageShift, 16}), &root);
    plb.insert(1, vm::VAddr(0x100000), 16, vm::Access::Read);
    // Purging one page inside the super-page must drop the whole
    // covering entry.
    const PurgeResult result = plb.purgeRange(
        std::nullopt, vm::pageOf(vm::VAddr(0x103000)), 1);
    EXPECT_EQ(result.invalidated, 1u);
    EXPECT_FALSE(plb.peek(1, vm::VAddr(0x100000)).has_value());
}

TEST(PlbTest, UpdateRightsRangeMarksEntries)
{
    // The paper's GC-flip operation: inspect each entry, mark those
    // in the range.
    stats::Group root("t");
    Plb plb(smallPlb(), &root);
    plb.insert(1, pageAddr(10), vm::kPageShift, vm::Access::ReadWrite);
    plb.insert(1, pageAddr(11), vm::kPageShift, vm::Access::ReadWrite);
    plb.insert(2, pageAddr(10), vm::kPageShift, vm::Access::ReadWrite);
    const PurgeResult result = plb.updateRightsRange(
        DomainId{1}, vm::Vpn(10), 4, vm::Access::None);
    EXPECT_EQ(result.scanned, plb.capacity());
    EXPECT_EQ(plb.peek(1, pageAddr(10))->rights, vm::Access::None);
    EXPECT_EQ(plb.peek(1, pageAddr(11))->rights, vm::Access::None);
    EXPECT_EQ(plb.peek(2, pageAddr(10))->rights, vm::Access::ReadWrite);
}

TEST(PlbTest, UpdateRightsRangeInvalidatesPartialSuperPages)
{
    stats::Group root("t");
    Plb plb(smallPlb(16, {vm::kPageShift, 16}), &root);
    plb.insert(1, vm::VAddr(0x100000), 16, vm::Access::ReadWrite);
    // Changing rights on a sub-range: the super-page entry can no
    // longer carry one value and must go.
    const PurgeResult result = plb.updateRightsRange(
        DomainId{1}, vm::pageOf(vm::VAddr(0x102000)), 2,
        vm::Access::Read);
    EXPECT_EQ(result.invalidated, 1u);
    EXPECT_FALSE(plb.peek(1, vm::VAddr(0x100000)).has_value());
}

TEST(PlbTest, IntersectRightsRangeOnlyRemoves)
{
    stats::Group root("t");
    Plb plb(smallPlb(), &root);
    plb.insert(1, pageAddr(10), vm::kPageShift, vm::Access::ReadWrite);
    plb.insert(2, pageAddr(10), vm::kPageShift, vm::Access::Read);
    plb.intersectRightsRange(vm::Vpn(10), 1, vm::Access::Read);
    EXPECT_EQ(plb.peek(1, pageAddr(10))->rights, vm::Access::Read);
    EXPECT_EQ(plb.peek(2, pageAddr(10))->rights, vm::Access::Read);
    plb.intersectRightsRange(vm::Vpn(10), 1, vm::Access::None);
    EXPECT_EQ(plb.peek(1, pageAddr(10))->rights, vm::Access::None);
}

TEST(PlbTest, PurgeAll)
{
    stats::Group root("t");
    Plb plb(smallPlb(), &root);
    plb.insert(1, pageAddr(1), vm::kPageShift, vm::Access::Read);
    plb.insert(2, pageAddr(2), vm::kPageShift, vm::Access::Read);
    EXPECT_EQ(plb.purgeAll(), 2u);
    EXPECT_EQ(plb.occupancy(), 0u);
}

TEST(PlbTest, LruEvictionWhenFull)
{
    stats::Group root("t");
    Plb plb(smallPlb(2), &root);
    plb.insert(1, pageAddr(1), vm::kPageShift, vm::Access::Read);
    plb.insert(1, pageAddr(2), vm::kPageShift, vm::Access::Read);
    plb.lookup(1, pageAddr(1)); // page 2 becomes LRU
    plb.insert(1, pageAddr(3), vm::kPageShift, vm::Access::Read);
    EXPECT_EQ(plb.evictions.value(), 1u);
    EXPECT_FALSE(plb.peek(1, pageAddr(2)).has_value());
    EXPECT_TRUE(plb.peek(1, pageAddr(1)).has_value());
}

TEST(PlbDeathTest, UnsupportedSizeShiftPanics)
{
    stats::Group root("t");
    Plb plb(smallPlb(), &root);
    EXPECT_DEATH(plb.insert(1, pageAddr(1), 16, vm::Access::Read),
                 "size shift");
}

TEST(PlbTest, ReplicationGrowsWithSharingDomains)
{
    // Section 4: "the PLB requires multiple entries for shared pages
    // where the page-group TLB would have only one."
    stats::Group root("t");
    Plb plb(smallPlb(64), &root);
    for (DomainId d = 1; d <= 8; ++d)
        plb.insert(d, pageAddr(42), vm::kPageShift, vm::Access::Read);
    EXPECT_EQ(plb.occupancy(), 8u);
}
