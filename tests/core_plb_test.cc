/**
 * @file
 * Behavioural tests for the PLB system: the specific claims the paper
 * makes about the domain-page model (Sections 3.2.1, 4.1, 4.3).
 */

#include <gtest/gtest.h>

#include "core/system.hh"

using namespace sasos;
using namespace sasos::core;

class PlbSystemTest : public ::testing::Test
{
  protected:
    PlbSystemTest() : sys_(SystemConfig::plbSystem())
    {
        a_ = sys_.kernel().createDomain("a");
        b_ = sys_.kernel().createDomain("b");
    }

    vm::SegmentId
    makeSegment(u64 pages, vm::Access a_rights, vm::Access b_rights,
                bool pow2 = true)
    {
        const vm::SegmentId seg =
            sys_.kernel().createSegment("seg", pages, pow2);
        if (a_rights != vm::Access::None)
            sys_.kernel().attach(a_, seg, a_rights);
        if (b_rights != vm::Access::None)
            sys_.kernel().attach(b_, seg, b_rights);
        return seg;
    }

    vm::VAddr
    baseOf(vm::SegmentId seg)
    {
        return sys_.state().segments.find(seg)->base();
    }

    PlbSystem &model() { return *sys_.plbSystem(); }

    core::System sys_;
    os::DomainId a_ = 0;
    os::DomainId b_ = 0;
};

TEST_F(PlbSystemTest, DomainSwitchIsOneRegisterWrite)
{
    // Section 4.1.4: "A protection domain switch on a PLB-based
    // system requires changing only a single register."
    const u64 before =
        sys_.account().byCategory(CostCategory::DomainSwitch).count();
    sys_.kernel().switchTo(b_);
    const u64 cost =
        sys_.account().byCategory(CostCategory::DomainSwitch).count() -
        before;
    EXPECT_EQ(cost, sys_.costs().domainSwitchBase.count() +
                        sys_.costs().registerWrite.count());
}

TEST_F(PlbSystemTest, SwitchPurgesNothing)
{
    const vm::SegmentId seg =
        makeSegment(4, vm::Access::ReadWrite, vm::Access::ReadWrite);
    sys_.touchRange(baseOf(seg), 4 * vm::kPageBytes);
    const std::size_t plb_before = model().plb().occupancy();
    const std::size_t tlb_before = model().translationTlb().occupancy();
    sys_.kernel().switchTo(b_);
    sys_.kernel().switchTo(a_);
    EXPECT_EQ(model().plb().occupancy(), plb_before);
    EXPECT_EQ(model().translationTlb().occupancy(), tlb_before);
}

TEST_F(PlbSystemTest, RightsFaultedInLazilyOnAttach)
{
    // Table 1 Attach: no hardware structure is touched eagerly.
    const std::size_t before = model().plb().occupancy();
    makeSegment(8, vm::Access::ReadWrite, vm::Access::None);
    EXPECT_EQ(model().plb().occupancy(), before);
}

TEST_F(PlbSystemTest, SharedPageUsesOneEntryPerDomain)
{
    SystemConfig config = SystemConfig::plbSystem();
    config.superPagePlb = false;
    config.plb.sizeShifts = {vm::kPageShift};
    core::System sys(config);
    auto &kernel = sys.kernel();
    const os::DomainId a = kernel.createDomain("a");
    const os::DomainId b = kernel.createDomain("b");
    const vm::SegmentId seg = kernel.createSegment("s", 1);
    kernel.attach(a, seg, vm::Access::ReadWrite);
    kernel.attach(b, seg, vm::Access::Read);
    const vm::VAddr base = sys.state().segments.find(seg)->base();

    kernel.switchTo(a);
    sys.load(base);
    kernel.switchTo(b);
    sys.load(base);
    EXPECT_EQ(sys.plbSystem()->plb().occupancy(), 2u);
}

TEST_F(PlbSystemTest, SuperPageEntryCoversAlignedSegment)
{
    // Section 4.3: "a single PLB entry could map the entire region."
    const vm::SegmentId seg =
        makeSegment(16, vm::Access::ReadWrite, vm::Access::None);
    sys_.touchRange(baseOf(seg), 16 * vm::kPageBytes);
    EXPECT_EQ(model().superPageFills.value(), 1u);
    EXPECT_EQ(model().plb().occupancy(), 1u);
    EXPECT_EQ(model().plb().misses.value(), 1u);
}

TEST_F(PlbSystemTest, UnalignedSegmentUsesPageEntries)
{
    const vm::SegmentId seg = makeSegment(
        5, vm::Access::ReadWrite, vm::Access::None, /*pow2=*/false);
    sys_.touchRange(baseOf(seg), 5 * vm::kPageBytes);
    EXPECT_EQ(model().superPageFills.value(), 0u);
    EXPECT_EQ(model().pageFills.value(), 5u);
}

TEST_F(PlbSystemTest, PageOverrideShattersSuperPage)
{
    const vm::SegmentId seg =
        makeSegment(8, vm::Access::ReadWrite, vm::Access::None);
    const vm::VAddr base = baseOf(seg);
    sys_.load(base); // super-page fill
    EXPECT_EQ(model().superPageFills.value(), 1u);

    sys_.kernel().setPageRights(a_, vm::pageOf(base), vm::Access::Read);
    // The covering entry is gone; the page-grain entry rules.
    auto match = model().plb().peek(a_, base);
    ASSERT_TRUE(match.has_value());
    EXPECT_EQ(match->sizeShift, vm::kPageShift);
    EXPECT_EQ(match->rights, vm::Access::Read);
    EXPECT_FALSE(sys_.store(base));
    EXPECT_TRUE(sys_.store(base + vm::kPageBytes));
}

TEST_F(PlbSystemTest, RightsChangeUpdatesSingleEntry)
{
    // Section 4.1.2: "changing a domain's access rights to a page
    // simply requires updating a PLB entry."
    SystemConfig config = SystemConfig::plbSystem();
    config.superPagePlb = false;
    config.plb.sizeShifts = {vm::kPageShift};
    core::System sys(config);
    auto &kernel = sys.kernel();
    const os::DomainId a = kernel.createDomain("a");
    const vm::SegmentId seg = kernel.createSegment("s", 2);
    kernel.attach(a, seg, vm::Access::ReadWrite);
    const vm::VAddr base = sys.state().segments.find(seg)->base();
    sys.load(base);

    const u64 updates_before = sys.plbSystem()->plb().updates.value();
    kernel.setPageRights(a, vm::pageOf(base), vm::Access::Read);
    EXPECT_EQ(sys.plbSystem()->plb().updates.value(), updates_before + 1);
    EXPECT_FALSE(sys.store(base));
}

TEST_F(PlbSystemTest, DetachScansThePlb)
{
    // Table 1 Detach: "inspect each entry and eliminate those for the
    // segment-domain pair affected."
    const vm::SegmentId seg =
        makeSegment(4, vm::Access::ReadWrite, vm::Access::None);
    sys_.touchRange(baseOf(seg), 4 * vm::kPageBytes);
    const u64 scans_before = model().plb().purgeScans.value();
    sys_.kernel().detach(a_, seg);
    EXPECT_GT(model().plb().purgeScans.value(), scans_before);
    EXPECT_FALSE(sys_.load(baseOf(seg)));
}

TEST_F(PlbSystemTest, StalePlbEntrySurvivesUnmapSafely)
{
    // Section 4.1.3: "no maintenance of the PLB is required" on
    // unmap; the stale entry may allow the access but the missing
    // translation faults it.
    const vm::SegmentId seg =
        makeSegment(1, vm::Access::ReadWrite, vm::Access::None);
    const vm::VAddr base = baseOf(seg);
    sys_.store(base);
    ASSERT_TRUE(model().plb().peek(a_, base).has_value());

    sys_.kernel().unmapPage(vm::pageOf(base));
    // The PLB still holds the entry (no purge)...
    EXPECT_TRUE(model().plb().peek(a_, base).has_value());
    const u64 trans_faults_before =
        sys_.kernel().translationFaults.value();
    // ...and the next access takes a translation fault, not a
    // protection fault.
    EXPECT_TRUE(sys_.load(base));
    EXPECT_EQ(sys_.kernel().translationFaults.value(),
              trans_faults_before + 1);
}

TEST_F(PlbSystemTest, UnmapFlushesCacheLines)
{
    const vm::SegmentId seg =
        makeSegment(1, vm::Access::ReadWrite, vm::Access::None);
    const vm::VAddr base = baseOf(seg);
    sys_.store(base);
    const u64 flushed_before = model().cache().flushedLines.value();
    sys_.kernel().unmapPage(vm::pageOf(base));
    EXPECT_GT(model().cache().flushedLines.value(), flushed_before);
    EXPECT_GT(sys_.account().byCategory(CostCategory::Flush).count(), 0u);
}

TEST_F(PlbSystemTest, VivtCacheHitsAcrossDomains)
{
    // Section 2.2: shared data lives once in the VIVT cache; a second
    // domain hits on the first domain's lines without flushes.
    const vm::SegmentId seg =
        makeSegment(1, vm::Access::ReadWrite, vm::Access::Read);
    const vm::VAddr base = baseOf(seg);
    sys_.kernel().switchTo(a_);
    sys_.load(base);
    const u64 misses_before = model().cache().misses.value();
    sys_.kernel().switchTo(b_);
    sys_.load(base);
    EXPECT_EQ(model().cache().misses.value(), misses_before);
}

TEST_F(PlbSystemTest, TranslationOnlyOnMisses)
{
    // Section 3.2.1: address translation only on cache misses and
    // writebacks -- repeated hits never touch the TLB.
    const vm::SegmentId seg =
        makeSegment(1, vm::Access::ReadWrite, vm::Access::None);
    const vm::VAddr base = baseOf(seg);
    sys_.load(base); // miss: translation
    const u64 tlb_lookups = model().translationTlb().lookups.value();
    for (int i = 0; i < 10; ++i)
        sys_.load(base);
    EXPECT_EQ(model().translationTlb().lookups.value(), tlb_lookups);
}

TEST_F(PlbSystemTest, WritebackTranslatesVictim)
{
    // A dirty VIVT victim needs its translation for writeback.
    SystemConfig config = SystemConfig::plbSystem();
    config.cache.sizeBytes = 4096; // tiny direct-mapped cache
    config.cache.ways = 1;
    core::System sys(config);
    auto &kernel = sys.kernel();
    const os::DomainId d = kernel.createDomain("d");
    const vm::SegmentId seg = kernel.createSegment("s", 4);
    kernel.attach(d, seg, vm::Access::ReadWrite);
    const vm::VAddr base = sys.state().segments.find(seg)->base();

    sys.store(base);                       // dirty line at index 0
    sys.store(base + 4096);                // evicts it (same index)
    EXPECT_GE(sys.plbSystem()->writebackTranslations.value(), 1u);
}

TEST_F(PlbSystemTest, GlobalRestrictScansWholePlb)
{
    // Changing a page's rights for all domains costs a PLB scan.
    const vm::SegmentId seg =
        makeSegment(2, vm::Access::ReadWrite, vm::Access::ReadWrite);
    const vm::VAddr base = baseOf(seg);
    sys_.kernel().switchTo(a_);
    sys_.load(base);
    const u64 scans_before = model().plb().purgeScans.value();
    sys_.kernel().restrictPage(vm::pageOf(base), vm::Access::None);
    EXPECT_GT(model().plb().purgeScans.value(), scans_before);
    EXPECT_FALSE(sys_.load(base));
}

TEST_F(PlbSystemTest, EffectiveRightsMatchCanonical)
{
    const vm::SegmentId seg =
        makeSegment(2, vm::Access::ReadWrite, vm::Access::Read);
    const vm::Vpn vpn = sys_.state().segments.find(seg)->firstPage;
    EXPECT_EQ(model().effectiveRights(a_, vpn),
              sys_.kernel().canonicalRights(a_, vpn));
    EXPECT_EQ(model().effectiveRights(b_, vpn),
              sys_.kernel().canonicalRights(b_, vpn));
}

TEST_F(PlbSystemTest, CacheProbeIndependentOfProtectionOutcome)
{
    // Figure 1: "the cache and PLB searches can occur completely in
    // parallel, because the cache lookup is not dependent on
    // information provided by the PLB." A denied reference still
    // performed its cache probe; an allowed one performs exactly the
    // same probe.
    const vm::SegmentId seg =
        makeSegment(1, vm::Access::ReadWrite, vm::Access::Read);
    const vm::VAddr base = baseOf(seg);
    sys_.kernel().switchTo(a_);
    sys_.store(base); // warm line

    const u64 accesses_before = model().cache().accesses.value();
    sys_.kernel().switchTo(b_);
    EXPECT_FALSE(sys_.store(base)); // denied by the PLB...
    // ...but the parallel cache probe happened anyway.
    EXPECT_EQ(model().cache().accesses.value(), accesses_before + 1);

    const u64 accesses_mid = model().cache().accesses.value();
    EXPECT_TRUE(sys_.load(base)); // allowed: same single probe
    EXPECT_EQ(model().cache().accesses.value(), accesses_mid + 1);
}

TEST_F(PlbSystemTest, DomainDestructionPurgesItsEntries)
{
    const vm::SegmentId seg =
        makeSegment(2, vm::Access::ReadWrite, vm::Access::Read);
    const vm::VAddr base = baseOf(seg);
    sys_.kernel().switchTo(b_);
    sys_.load(base);
    sys_.kernel().switchTo(a_);
    sys_.load(base);
    ASSERT_TRUE(model().plb().peek(b_, base).has_value());
    sys_.kernel().destroyDomain(b_);
    EXPECT_FALSE(model().plb().peek(b_, base).has_value());
    EXPECT_TRUE(model().plb().peek(a_, base).has_value());
}
