/**
 * @file
 * Schedule-explorer invariant tests: many interleavings of an
 * attach/revoke-churn workload, on every protection model, each run
 * checked for the stale-rights and hw-subset-of-canonical safety
 * invariants, with allow/deny agreement across models at shootdown
 * quiescence points and outcome projection onto sequential runs.
 */

#include <gtest/gtest.h>

#include "core/mc/explorer.hh"
#include "core/mc/mc_system.hh"
#include "core/system.hh"

using namespace sasos;
namespace mc = sasos::core::mc;

namespace
{

mc::McConfig
churnConfig(core::ModelKind kind)
{
    mc::McConfig config;
    config.system = core::SystemConfig::forModel(kind);
    config.cores = 4;
    config.workload.stepsPerCore = 400;
    config.workload.churnProb = 0.15;
    config.workload.seed = 11;
    return config;
}

} // namespace

/** 64 interleavings per model of a shared-segment churn workload:
 * every run must hold both safety invariants, and enough runs must
 * actually open stale windows for the check to mean anything. */
TEST(McInterleaveTest, InvariantsHoldOverSixtyFourSchedules)
{
    for (core::ModelKind kind :
         {core::ModelKind::Plb, core::ModelKind::PageGroup,
          core::ModelKind::Conventional, core::ModelKind::Pkey}) {
        mc::ExplorerConfig explorer;
        explorer.base = churnConfig(kind);
        explorer.seeds = 64;
        explorer.threads = 4;
        const mc::ExplorerResult result = mc::explore(explorer);
        EXPECT_TRUE(result.passed())
            << core::toString(kind) << ": " << result.firstViolation;
        EXPECT_GT(result.totalShootdowns, 0u) << core::toString(kind);
        u64 window_refs = 0;
        for (const mc::RunSummary &run : result.runs)
            window_refs += run.staleWindowRefs;
        EXPECT_GT(window_refs, 0u)
            << core::toString(kind)
            << ": no run ever opened a stale window; the invariant "
               "check never exercised the race";
    }
}

/** The same 64 schedules run against all four protection models:
 * references issued at local quiescence see only canonical rights, so
 * their allow/deny outcomes must agree across models even though the
 * hardware (PLB / page-group cache / ASID TLB / key-permission
 * register file) differs completely. */
TEST(McInterleaveTest, ModelsAgreeAtQuiescencePoints)
{
    mc::ExplorerConfig explorer;
    explorer.base = churnConfig(core::ModelKind::Plb);
    explorer.seeds = 64;
    explorer.threads = 4;
    const mc::CrossModelResult result = mc::exploreCrossModel(explorer);
    EXPECT_EQ(result.totalViolations, 0u) << result.firstViolation;
    EXPECT_EQ(result.disagreements, 0u);
    EXPECT_TRUE(result.passed());
    ASSERT_EQ(result.runs.size(), 64u);
    for (const mc::CrossModelRun &run : result.runs) {
        ASSERT_EQ(run.byModel.size(), 4u);
        EXPECT_FALSE(run.byModel[0].quiescentOutcomes.empty())
            << "seed " << run.scheduleSeed
            << " issued no quiescent references; nothing was compared";
    }
}

/** With core-local churn (each core revokes only its own private
 * pages), a core's allow/deny vector is independent of the
 * interleaving: it must equal a sequential replay of that core's
 * script against a plain System with the identical setup. */
TEST(McInterleaveTest, PrivateChurnOutcomesProjectOntoSequentialRun)
{
    for (core::ModelKind kind :
         {core::ModelKind::Plb, core::ModelKind::PageGroup,
          core::ModelKind::Conventional, core::ModelKind::Pkey}) {
        mc::McConfig config = churnConfig(kind);
        config.workload.privateChurn = true;
        config.workload.churnProb = 0.2;
        config.recordOutcomes = true;
        mc::McSystem engine(config);
        const mc::McResult result = engine.run();
        EXPECT_EQ(result.invariantViolations, 0u)
            << core::toString(kind) << ": " << result.firstViolation;
        ASSERT_EQ(result.coreOutcomes.size(), config.cores);

        for (unsigned ci = 0; ci < config.cores; ++ci) {
            // Sequential replica: the engine's documented setup order
            // (domains, shared segment + attaches, private segments),
            // then only core ci's script.
            core::System sys(config.system);
            auto &kernel = sys.kernel();
            std::vector<os::DomainId> domains;
            for (unsigned i = 0; i < config.cores; ++i)
                domains.push_back(
                    kernel.createDomain("core" + std::to_string(i)));
            const vm::SegmentId shared = kernel.createSegment(
                "shared", config.workload.sharedPages);
            for (unsigned i = 0; i < config.cores; ++i)
                kernel.attach(domains[i], shared, vm::Access::ReadWrite);
            std::vector<mc::McLayout> layouts(config.cores);
            for (unsigned i = 0; i < config.cores; ++i) {
                layouts[i].sharedSeg = shared;
                layouts[i].sharedBase =
                    sys.state().segments.find(shared)->base();
                layouts[i].sharedPages = config.workload.sharedPages;
                const vm::SegmentId seg = kernel.createSegment(
                    "private" + std::to_string(i),
                    config.workload.privatePages);
                kernel.attach(domains[i], seg, vm::Access::ReadWrite);
                layouts[i].privateSeg = seg;
                layouts[i].privateBase =
                    sys.state().segments.find(seg)->base();
                layouts[i].privatePages = config.workload.privatePages;
            }
            ASSERT_EQ(layouts[ci].privateBase.raw(),
                      engine.layoutOf(ci).privateBase.raw());

            kernel.switchTo(domains[ci]);
            std::vector<u8> outcomes;
            mc::CoreScript script(config.workload, ci, domains[ci],
                                  layouts[ci]);
            while (!script.done()) {
                const mc::Step step = script.next();
                if (step.kind == mc::StepKind::Ref)
                    outcomes.push_back(
                        sys.access(step.va, step.type) ? 1 : 0);
                else
                    mc::applyKernelStep(kernel, domains[ci], step);
            }
            EXPECT_EQ(result.coreOutcomes[ci], outcomes)
                << core::toString(kind) << " core " << ci;
        }
    }
}

/** Core-local churn outcomes are also invariant across schedules --
 * the projection stated directly over the explorer's fan-out. */
TEST(McInterleaveTest, PrivateChurnOutcomesScheduleInvariant)
{
    mc::ExplorerConfig explorer;
    explorer.base = churnConfig(core::ModelKind::Conventional);
    explorer.base.workload.privateChurn = true;
    explorer.base.recordOutcomes = true;
    explorer.seeds = 8;
    explorer.threads = 4;
    const mc::ExplorerResult result = mc::explore(explorer);
    EXPECT_TRUE(result.passed()) << result.firstViolation;
    ASSERT_FALSE(result.runs.empty());
    for (std::size_t i = 1; i < result.runs.size(); ++i)
        EXPECT_EQ(result.runs[i].coreOutcomes,
                  result.runs[0].coreOutcomes)
            << "schedule seed " << result.runs[i].scheduleSeed;
}
